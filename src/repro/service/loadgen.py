"""Closed-loop load generator for the online validation service.

The muBench replication package pairs every deployed service with a load
generator that replays a workload and collects per-run latency/throughput;
this module is that harness for :class:`ValidationService`.

The generator is *closed-loop*: ``concurrency`` virtual clients each keep
exactly one request in flight, issuing the next item of a shared schedule
as soon as the previous answer (or rejection) returns.  The schedule is a
deterministic arrival mix — seeded weighted draws over the configured
``(method, model)`` strategies and the facts of the given datasets — so two
runs over the same spec replay byte-identical workloads.

The schedule may also carry *writes*: an :class:`IngestRequest` wraps a
mutation batch that the picking client applies through
:meth:`ValidationService.apply_mutations`, advancing the store epoch
mid-load.  :func:`build_mixed_workload` splices ingest batches into a read
schedule at deterministic, evenly spaced positions, which is how the
benchmark exercises epoch-fresh verdicts under live-update traffic.
"""

from __future__ import annotations

import asyncio
import inspect
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..datasets.base import FactDataset
from ..store import Mutation
from .metrics import MetricsSnapshot
from .server import (
    RequestOutcome,
    ServiceRequest,
    ServiceResponse,
    ValidationService,
)

__all__ = [
    "IngestRequest",
    "LoadGenerator",
    "LoadReport",
    "build_mixed_workload",
    "build_workload",
]


@dataclass(frozen=True)
class IngestRequest:
    """A write in the arrival schedule: one mutation batch to apply."""

    mutations: Tuple[Mutation, ...]

    def __post_init__(self) -> None:
        if not self.mutations:
            raise ValueError("an IngestRequest needs at least one mutation")


#: One schedule item: a single-fact read or a mutation-batch write.
WorkItem = Union[ServiceRequest, IngestRequest]


def _keyword_names(callable_) -> frozenset:
    """The keyword-capable parameter names of a callable (empty on doubles
    whose signatures cannot be introspected)."""
    try:
        parameters = inspect.signature(callable_).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic doubles
        return frozenset()
    return frozenset(
        name
        for name, parameter in parameters.items()
        if parameter.kind
        in (parameter.POSITIONAL_OR_KEYWORD, parameter.KEYWORD_ONLY)
    )


def build_workload(
    datasets: Sequence[FactDataset],
    methods: Sequence[str],
    models: Sequence[str],
    total_requests: int,
    seed: int = 0,
    method_weights: Optional[Mapping[str, float]] = None,
) -> List[ServiceRequest]:
    """Deterministic request schedule with a configurable arrival mix.

    Facts are drawn uniformly from the union of ``datasets``; the judging
    method follows ``method_weights`` (uniform when omitted) and the model
    is drawn uniformly.  Repeats are expected and intentional — they are
    what exercises the verdict cache under load.
    """
    if total_requests < 0:
        raise ValueError("total_requests must be >= 0")
    if not datasets or not methods or not models:
        raise ValueError("datasets, methods, and models must be non-empty")
    facts = [fact for dataset in datasets for fact in dataset]
    if not facts:
        raise ValueError("datasets contain no facts")
    weights = [float((method_weights or {}).get(method, 1.0)) for method in methods]
    if min(weights) < 0 or sum(weights) <= 0:
        raise ValueError("method_weights must be non-negative and sum > 0")
    rng = random.Random(seed)
    schedule: List[ServiceRequest] = []
    for _ in range(total_requests):
        schedule.append(
            ServiceRequest(
                fact=rng.choice(facts),
                method=rng.choices(list(methods), weights=weights)[0],
                model=rng.choice(list(models)),
            )
        )
    return schedule


def build_mixed_workload(
    datasets: Sequence[FactDataset],
    methods: Sequence[str],
    models: Sequence[str],
    total_requests: int,
    ingest_batches: Sequence[Sequence[Mutation]],
    seed: int = 0,
    method_weights: Optional[Mapping[str, float]] = None,
) -> List[WorkItem]:
    """A read schedule with ingest batches spliced in at deterministic spots.

    The reads come from :func:`build_workload` (same seed, same mix); the
    ``k`` ingest batches land at evenly spaced positions ``(i + 1) *
    total / (k + 1)`` so the load alternates read phases with writes.  The
    mixed schedule is fully deterministic: two calls with the same inputs
    produce byte-identical arrival orders.
    """
    reads = build_workload(
        datasets, methods, models, total_requests, seed=seed, method_weights=method_weights
    )
    schedule: List[WorkItem] = list(reads)
    for position, batch in enumerate(ingest_batches):
        index = (position + 1) * total_requests // (len(ingest_batches) + 1)
        # Each earlier insertion shifted the tail by one; offset by the
        # number of batches already spliced in.
        schedule.insert(min(index + position, len(schedule)), IngestRequest(tuple(batch)))
    return schedule


@dataclass
class LoadReport:
    """Everything one closed-loop run measured.

    ``requests`` and ``responses`` are index-aligned: ``responses[i]`` is
    the answer to ``requests[i]`` (:meth:`verdicts` relies on this).
    """

    responses: List[ServiceResponse]
    wall_seconds: float
    concurrency: int
    snapshot: MetricsSnapshot = field(repr=False)
    requests: List[WorkItem] = field(default_factory=list, repr=False)
    #: Index-aligned session tokens: ``sessions[i]`` is the client identity
    #: that issued item ``i`` (``None`` when sessions were disabled or the
    #: driven service does not speak them).
    sessions: List[Optional[str]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.requests and len(self.requests) != len(self.responses):
            raise ValueError(
                f"requests ({len(self.requests)}) and responses "
                f"({len(self.responses)}) must be index-aligned"
            )
        if self.sessions and len(self.sessions) != len(self.responses):
            raise ValueError(
                f"sessions ({len(self.sessions)}) and responses "
                f"({len(self.responses)}) must be index-aligned"
            )

    @property
    def total(self) -> int:
        """Schedule items issued (reads and writes)."""
        return len(self.responses)

    @property
    def completed(self) -> int:
        """Reads answered with a verdict (cached or judged)."""
        return sum(
            1 for response in self.responses
            if response.outcome is RequestOutcome.COMPLETED
        )

    @property
    def rejected(self) -> int:
        """Reads shed by admission control."""
        return sum(1 for response in self.responses if response.rejected)

    @property
    def failures(self) -> int:
        """Requests a shard failed or stalled on (explicit ``FAILED`` outcomes)."""
        return sum(1 for response in self.responses if response.failed)

    @property
    def degraded(self) -> int:
        """Reads served stale from the last-known-good cache (``DEGRADED``)."""
        return sum(1 for response in self.responses if response.degraded)

    @property
    def retries_total(self) -> int:
        """Extra retry passes the router made across the whole run."""
        return sum(response.retries for response in self.responses)

    @property
    def ingests(self) -> int:
        """Writes in the schedule: applied mutation batches."""
        return sum(1 for response in self.responses if response.ingested)

    @property
    def cache_hits(self) -> int:
        """Reads served straight from the verdict cache."""
        return sum(1 for response in self.responses if response.cached)

    @property
    def throughput_rps(self) -> float:
        """Completed requests per wall second of this run."""
        return self.completed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def outcome_counts(self) -> Dict[str, int]:
        """Per-outcome response counts, keyed by ``RequestOutcome`` value.

        Every outcome appears (zero-filled), and the counts sum to
        :attr:`total` by construction — the accounting invariant
        :meth:`LoadGenerator.run` re-checks after every run.
        """
        counts: Dict[str, int] = {outcome.value: 0 for outcome in RequestOutcome}
        for response in self.responses:
            counts[response.outcome.value] += 1
        return counts

    def epochs_served(self) -> List[int]:
        """The distinct store epochs read responses were answered at."""
        return sorted({
            response.epoch
            for response in self.responses
            if response.outcome is RequestOutcome.COMPLETED
        })

    @property
    def edge_served(self) -> int:
        """Reads a geo edge answered locally (``served_by`` != primary)."""
        return sum(
            1 for response in self.responses
            if response.served_by not in (None, "primary")
        )

    def session_violations(self) -> List[str]:
        """Read-your-writes violations, one line each (empty = the invariant held).

        Per session, in issue order (each closed-loop client pulls strictly
        increasing schedule indices, so global index order *is* per-session
        issue order): every write raises the session's floor at the shards
        it actually landed on (the INGESTED epoch vector is sparse — zero
        at untouched shards, so other clients' concurrent writes never
        inflate this session's floor), and every later completed read's
        epoch vector must cover that floor component-wise.  Degraded
        responses are exempt — serving stale from the last-known-good
        cache is their contract."""
        floors: Dict[str, Dict[int, int]] = {}
        violations: List[str] = []
        for index, (response, session) in enumerate(zip(self.responses, self.sessions)):
            if session is None:
                continue
            if response.outcome is RequestOutcome.INGESTED:
                floor = floors.setdefault(session, {})
                for shard, epoch in enumerate(response.epoch_vector):
                    floor[shard] = max(floor.get(shard, 0), epoch)
            elif response.outcome is RequestOutcome.COMPLETED:
                floor = floors.get(session)
                if not floor:
                    continue
                vector = response.epoch_vector
                for shard, epoch in floor.items():
                    if shard < len(vector) and vector[shard] < epoch:
                        violations.append(
                            f"{session} read #{index} observed epoch "
                            f"{vector[shard]} on shard {shard}, below its own "
                            f"write at {epoch}"
                        )
        return violations

    def verdicts(
        self, epoch: Optional[int] = None
    ) -> Dict[Tuple[str, str, str, str], str]:
        """``(method, model, dataset, fact_id) -> verdict`` over completions.

        ``epoch`` restricts the table to responses answered at one store
        epoch — the handle the mixed read/write benchmark uses to check
        pre- and post-ingest verdicts independently.
        """
        table: Dict[Tuple[str, str, str, str], str] = {}
        for request, response in zip(self.requests, self.responses):
            if not isinstance(request, ServiceRequest) or response.result is None:
                continue
            if epoch is not None and response.epoch != epoch:
                continue
            key = (request.method, request.model, request.fact.dataset, request.fact.fact_id)
            table[key] = response.result.verdict.value
        return table

    def format_table(self, title: str = "Load run") -> str:
        """Render the run's headline numbers as the text table the
        ``loadgen`` CLI prints (see docs/operations.md for the glossary)."""
        header = (
            f"{title}: {self.total} requests, concurrency {self.concurrency}, "
            f"{self.wall_seconds:.3f} s wall"
        )
        lines = [
            header,
            "-" * len(header),
            f"throughput       {self.throughput_rps:.1f} req/s",
            f"completed        {self.completed}",
            f"rejected (shed)  {self.rejected}",
            f"failures         {self.failures}",
            f"degraded         {self.degraded}",
            f"retries          {self.retries_total}",
            f"ingests          {self.ingests}",
            f"cache hits       {self.cache_hits}",
            f"p50 latency      {self.snapshot.p50_latency_s * 1000:.2f} ms",
            f"p95 latency      {self.snapshot.p95_latency_s * 1000:.2f} ms",
            f"p99 latency      {self.snapshot.p99_latency_s * 1000:.2f} ms",
            f"mean batch size  {self.snapshot.mean_batch_size:.2f}",
        ]
        return "\n".join(lines)


class LoadGenerator:
    """Drives a service with ``concurrency`` closed-loop virtual clients.

    Works against a plain :class:`ValidationService` or a
    :class:`~repro.service.router.ShardedValidationService` — both expose
    the ``submit`` / ``apply_mutations`` / ``metrics`` surface.  Raises
    :class:`ValueError` when ``concurrency < 1``.
    """

    def __init__(
        self,
        service: ValidationService,
        requests: Sequence[WorkItem],
        concurrency: int = 8,
        regions: Optional[Sequence[Optional[str]]] = None,
        sessions: bool = True,
    ) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.service = service
        self.requests = list(requests)
        self.concurrency = concurrency
        #: Client home regions: client ``i`` reads from ``regions[i % len]``
        #: (``None`` entries pin clients to the primary tier).  Empty = no
        #: geo affinity, every read goes to the primary.
        self.regions: List[Optional[str]] = list(regions) if regions else []
        # Every client used to share one implicit identity, which made
        # session-consistency effects invisible under load; each virtual
        # client is now its own session token — when the driven service
        # speaks sessions (the sharded router does; the plain service and
        # older doubles do not, detected by signature, not isinstance, so
        # wrappers and fakes keep working).
        submit_params = _keyword_names(service.submit)
        apply_params = _keyword_names(service.apply_mutations)
        self._session_kwarg = (
            sessions and "session" in submit_params and "session" in apply_params
        )
        self._region_kwarg = "region" in submit_params
        if self.regions and not self._region_kwarg:
            raise ValueError(
                f"{type(service).__name__}.submit takes no 'region'; "
                "regions need a geo-aware router"
            )

    def _client_session(self, client_index: int) -> Optional[str]:
        return f"client-{client_index}" if self._session_kwarg else None

    def _client_region(self, client_index: int) -> Optional[str]:
        if not self.regions:
            return None
        return self.regions[client_index % len(self.regions)]

    async def _issue(self, item: WorkItem, client_index: int) -> ServiceResponse:
        session = self._client_session(client_index)
        if isinstance(item, IngestRequest):
            started = time.perf_counter()
            if session is not None:
                report = await self.service.apply_mutations(
                    list(item.mutations), session=session
                )
            else:
                report = await self.service.apply_mutations(list(item.mutations))
            # The INGESTED epoch vector is the *session's write floor*: the
            # landed epoch at every shard this batch actually touched, zero
            # elsewhere.  The full fleet vector would entangle the session
            # with other clients' concurrent writes on shards it never
            # wrote — the router's read-your-writes gate (and therefore
            # :meth:`LoadReport.session_violations`) covers own writes only.
            vector = getattr(report, "epoch_vector", ())
            shard_reports = getattr(report, "shard_reports", None)
            if shard_reports is not None:
                landed = [0] * len(vector)
                for shard_index, shard_report in shard_reports:
                    landed[shard_index] = shard_report.epoch
                vector = tuple(landed)
            return ServiceResponse(
                outcome=RequestOutcome.INGESTED,
                result=None,
                cached=False,
                latency_seconds=time.perf_counter() - started,
                batch_size=report.total_ops,
                epoch=report.epoch,
                epoch_vector=vector,
            )
        kwargs = {}
        if session is not None:
            kwargs["session"] = session
        region = self._client_region(client_index)
        if region is not None:
            kwargs["region"] = region
        return await self.service.submit(item, **kwargs)

    async def run(self) -> LoadReport:
        """Replay the schedule on the caller's event loop (the service must
        already be started) and return the index-aligned report.

        Raises :class:`RuntimeError` when outcome accounting breaks or —
        with sessions active — any client observes an epoch vector below
        its own last write (:meth:`LoadReport.session_violations`)."""
        responses: List[Optional[ServiceResponse]] = [None] * len(self.requests)
        sessions: List[Optional[str]] = [None] * len(self.requests)
        next_index = 0

        async def client(client_index: int) -> None:
            nonlocal next_index
            while True:
                index = next_index
                if index >= len(self.requests):
                    return
                next_index = index + 1
                sessions[index] = self._client_session(client_index)
                responses[index] = await self._issue(self.requests[index], client_index)

        started = time.perf_counter()
        clients = min(self.concurrency, max(1, len(self.requests)))
        await asyncio.gather(*(client(index) for index in range(clients)))
        wall = time.perf_counter() - started
        report = LoadReport(
            responses=[response for response in responses if response is not None],
            wall_seconds=wall,
            concurrency=clients,
            snapshot=self.service.metrics.snapshot(),
            requests=self.requests,
            sessions=sessions[: len(self.requests)],
        )
        # Accounting invariant: every issued schedule item is answered by
        # exactly one outcome — nothing dropped, nothing double-counted.
        counts = report.outcome_counts()
        if sum(counts.values()) != report.total or report.total != len(self.requests):
            raise RuntimeError(
                f"outcome accounting broke: {counts} sums to "
                f"{sum(counts.values())} over {report.total} responses for "
                f"{len(self.requests)} issued requests"
            )
        # Session invariant: no client ever reads below its own writes.
        violations = report.session_violations()
        if violations:
            raise RuntimeError(
                "read-your-writes violated under load: " + "; ".join(violations[:5])
            )
        return report

    def run_sync(self) -> LoadReport:
        """Convenience wrapper: start the service, run, stop, in a fresh loop."""

        async def _go() -> LoadReport:
            async with self.service:
                return await self.run()

        return asyncio.run(_go())
