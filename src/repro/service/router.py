"""Sharded, replicated serving tier: read fan-out, failover, scatter-gather.

:class:`ShardedValidationService` fronts N logical shards, each backed by a
**replica group** of R independent
:class:`~repro.service.server.ValidationService` workers, and exposes the
same surface the unsharded service does (``submit`` / ``apply_mutations``
/ ``metrics`` / async context manager), so the TCP front-end, the load
generator, and the CLI drive either interchangeably.

Routing and consistency:

* **Reads** route by consistent hash of the fact's subject entity — the
  same :class:`~repro.store.sharding.HashRing` the store partition uses —
  to the owning *shard*, then a load balancer picks one of the shard's
  replicas: healthy replicas are ordered by queue depth (least pending
  first) with a round-robin tie-break, so single-fact reads fan out across
  the whole group instead of serialising through one worker.
* **Batches** scatter-gather: :meth:`submit_many` fans a multi-fact batch
  out to the owning shards concurrently and merges the responses back in
  submission order — a deterministic merge, so the gathered verdicts are
  byte-identical to the unsharded service (and to the offline pipeline)
  for the same coordinates, whichever replica happens to answer.
* **Writes** route by the same key (:func:`mutation_shard_key`) and ship
  to **every replica** of the owning shard: each replica service quiesces
  itself, applies the identical batch to its own store copy, and bumps its
  epoch — the group stays in lockstep, enforced by byte-identical state
  digests when a replicated store is attached.  Other shards keep serving
  throughout, and because verdict-cache keys carry the per-shard epoch, an
  ingest invalidates only the owning shard's cached verdicts.
* **Faults fail over, then surface**: a replica that raises, stalls past
  ``request_timeout_s``, or is killed mid-request is marked unhealthy and
  its traffic reroutes to sibling replicas — the client sees a normal
  ``COMPLETED`` verdict, not a ``FAILED``.  Only when *every* replica of
  the owning shard fails does the request surface an explicit ``FAILED``
  response (never an exception, never a hang).  Unhealthy replicas are
  re-admitted by health probes: after ``probe_interval_s`` the balancer
  routes one canary request at the suspect; success restores it to the
  rotation, failure resets the probe timer.

Every response is stamped with the composite epoch vector
(``ServiceResponse.epoch_vector``) and its scalar sum, so clients can
reason about which shard versions an answer reflects.
"""

from __future__ import annotations

import asyncio
import dataclasses
import random
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..chaos.clock import Clock, MonotonicClock
from ..llm.telemetry import TelemetryCollector
from ..obs import Observability
from ..obs.registry import MetricFamily, MetricsRegistry, render_exposition
from ..obs.trace import (
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_SHED,
    Span,
    Tracer,
    maybe_span,
)
from ..store import GeoReplicator, Mutation, ReplicaGroup, ShardApplyReport, ShardedStore
from ..store.sharding import HashRing, ReplicaDivergedError
from ..validation.base import ValidationResult
from .cache import verdict_cache_key
from .config import ServiceConfig
from .metrics import MetricsSnapshot, percentile
from .policy import RetryPolicy
from .server import RequestOutcome, ServiceRequest, ServiceResponse, ValidationService

__all__ = [
    "ROUTER_METRIC_NAMES",
    "ReplicaHealth",
    "RouterMetrics",
    "ShardedValidationService",
]

#: Every registry metric :class:`RouterMetrics` owns on top of the
#: per-replica ``SERVICE_METRIC_NAMES`` — the docs lint checks the
#: observability runbook documents each of these by name.
ROUTER_METRIC_NAMES = (
    "router_failures_total",
    "router_timeout_failures_total",
    "router_failovers_total",
    "router_retries_total",
    "router_degraded_total",
    "router_budget_exhausted_total",
    "router_unhealthy_replicas",
    "router_staleness_epochs",
    # Geo tier (per-edge series carry an ``edge`` label at collect time;
    # the session-fallback counter is fleet-level):
    "router_geo_watermark_epoch",
    "router_geo_watermark_lag_epochs",
    "router_geo_queue_depth",
    "router_geo_edge_reads_total",
    "router_geo_batches_shipped_total",
    "router_geo_session_fallbacks_total",
)


@dataclass
class ReplicaHealth:
    """Live health and traffic state of one replica worker.

    Attributes
    ----------
    shard / replica:
        The replica's coordinates in the fleet.
    healthy:
        Whether the balancer currently routes regular traffic here.  A
        replica turns unhealthy after ``unhealthy_after`` consecutive
        faults and healthy again the moment any request (including a
        probe) succeeds on it.
    served:
        Requests this replica answered (completions and shed responses).
    failures / timeouts:
        Faulted attempts observed by the router on this replica;
        ``timeouts`` is the subset abandoned past ``request_timeout_s``.
    consecutive_failures:
        Current fault streak; reset to zero by any success.
    probes:
        Canary requests routed here while unhealthy.
    readmissions:
        Times a probe (or last-resort attempt) restored the replica.
    marked_unhealthy_at:
        Router-clock time of the latest fault — the probe timer's
        anchor — or ``None`` while healthy.  Read through the router's
        injectable :class:`~repro.chaos.clock.Clock`, so probe timing is
        deterministic under a virtual clock.
    probing:
        True while one canary is in flight (bounds probes to one at a
        time per replica).
    """

    shard: int
    replica: int
    healthy: bool = True
    served: int = 0
    failures: int = 0
    timeouts: int = 0
    consecutive_failures: int = 0
    probes: int = 0
    readmissions: int = 0
    marked_unhealthy_at: Optional[float] = None
    probing: bool = False


class RouterMetrics:
    """Aggregating view over the per-replica :class:`ServiceMetrics`.

    Counters sum across every replica of every shard; latency percentiles
    are computed over the *concatenated* per-replica windows (per-worker
    percentiles cannot be averaged); wall time is the longest worker
    window and fleet throughput is total completions over that wall.

    ``failures`` counts every ``FAILED`` response the router produced and
    ``failovers`` every request a sibling replica rescued after its first
    choice faulted.  The fleet snapshot's ``errors`` counter is adjusted so
    ``completed + rejected + errors`` accounts for every non-ingest request
    exactly once: a faulted attempt the owning worker already counted (its
    strategy raised after admission) is *subtracted* when a sibling later
    completed the request, and a ``FAILED`` response whose attempts were
    invisible to the workers (timeouts, stopped replicas) is *added*.
    """

    def __init__(
        self,
        groups: Sequence[Sequence[ValidationService]],
        health: Sequence[Sequence[ReplicaHealth]],
        edge_names: Sequence[str] = (),
    ) -> None:
        self._groups = [list(group) for group in groups]
        self._health = health
        #: The router's own instruments (fleet counters the replicas cannot
        #: see); :meth:`exposition` merges it with every replica registry.
        self.registry = MetricsRegistry()
        self._failures_total = self.registry.counter(
            "router_failures_total", "FAILED responses after every replica was tried."
        )
        self._timeout_failures_total = self.registry.counter(
            "router_timeout_failures_total",
            "The subset of failures involving a stalled replica.",
        )
        self._failovers_total = self.registry.counter(
            "router_failovers_total",
            "Requests rescued by a sibling replica after >= 1 faulted attempts.",
        )
        self._retries_total = self.registry.counter(
            "router_retries_total",
            "Extra full passes over a shard's replicas under the retry policy.",
        )
        self._degraded_total = self.registry.counter(
            "router_degraded_total",
            "DEGRADED responses served from the stale verdict cache.",
        )
        self._budget_exhausted_total = self.registry.counter(
            "router_budget_exhausted_total",
            "Requests whose whole retry budget was spent without a live answer.",
        )
        self._unhealthy_gauge = self.registry.gauge(
            "router_unhealthy_replicas",
            "Replicas currently out of the regular routing rotation.",
        )
        self._staleness_gauge = self.registry.gauge(
            "router_staleness_epochs",
            "Epoch lag of the most recent DEGRADED response (0 = serving fresh).",
        )
        self._geo_session_fallbacks_total = self.registry.counter(
            "router_geo_session_fallbacks_total",
            "Reads a session's last-write vector forced off an edge to the primary tier.",
        )
        #: Per-edge geo instruments; collected with an injected ``edge``
        #: label (per-edge registries own identical unlabeled series).
        self._edge_instruments: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        for name in edge_names:
            registry = MetricsRegistry()
            self._edge_instruments[name] = {
                "registry": registry,
                "watermark": registry.gauge(
                    "router_geo_watermark_epoch",
                    "Composite reported watermark (sum of per-shard acked epochs).",
                ),
                "lag": registry.gauge(
                    "router_geo_watermark_lag_epochs",
                    "Worst per-shard epochs this edge's reported watermark trails the primary.",
                ),
                "depth": registry.gauge(
                    "router_geo_queue_depth",
                    "Outbound batches queued for this edge across every shard.",
                ),
                "reads": registry.counter(
                    "router_geo_edge_reads_total",
                    "Reads this edge answered (stamped with visible staleness).",
                ),
                "shipped": registry.counter(
                    "router_geo_batches_shipped_total",
                    "Queued batches this edge has applied and acknowledged.",
                ),
            }
        #: Optional hook the router installs to refresh the geo gauges
        #: right before a scrape (watermarks move between requests).
        self.geo_refresh = None
        # Snapshot bookkeeping (not a metric): reconciles worker-counted
        # errors with router outcomes so the fleet total stays exact.
        self._error_adjustment = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------- recording

    def observe_failure(self, timeout: bool = False, counted_errors: int = 0) -> None:
        """One ``FAILED`` response after every replica was tried.

        ``timeout=True`` when a stall past the request timeout contributed;
        ``counted_errors`` is how many of the failed attempts the owning
        workers already folded into their own ``errors`` counters (the
        snapshot keeps the total at exactly one per failed request).
        """
        self._failures_total.inc()
        if timeout:
            self._timeout_failures_total.inc()
        with self._lock:
            self._error_adjustment += 1 - counted_errors

    def observe_failover(self, counted_errors: int = 0) -> None:
        """One request rescued by a sibling after >= 1 faulted attempts."""
        self._failovers_total.inc()
        with self._lock:
            self._error_adjustment -= counted_errors

    def observe_retry(self) -> None:
        """One extra full pass over a shard's replicas under a retry policy."""
        self._retries_total.inc()

    def observe_budget_exhausted(self) -> None:
        """One request whose whole retry budget was spent without an answer
        (it then either degrades to a stale verdict or fails)."""
        self._budget_exhausted_total.inc()

    def observe_degraded(
        self, counted_errors: int = 0, staleness_epochs: Optional[int] = None
    ) -> None:
        """One ``DEGRADED`` response served from the stale verdict cache.

        ``counted_errors`` faulted attempts already live in the owning
        workers' ``errors`` counters; a degraded request lands in
        ``degraded`` (not ``errors``), so they are subtracted — the fleet
        invariant becomes ``completed + rejected + errors + degraded ==
        submitted``.  ``staleness_epochs`` is how many applied epochs the
        served verdict lagged the shard's watermark — published on the
        ``router_staleness_epochs`` gauge so the staleness SLO can watch
        lag over time.
        """
        self._degraded_total.inc()
        if staleness_epochs is not None:
            self._staleness_gauge.set(staleness_epochs)
        with self._lock:
            self._error_adjustment -= counted_errors

    def observe_geo_read(self, edge: str) -> None:
        """One read answered by ``edge`` (with visible staleness)."""
        self._edge_instruments[edge]["reads"].inc()

    def observe_geo_ship(self, edge: str) -> None:
        """One queued batch applied and acknowledged by ``edge``."""
        self._edge_instruments[edge]["shipped"].inc()

    def observe_geo_session_fallback(self) -> None:
        """One read routed to the primary tier because no edge's watermark
        covered the session's last-write vector (or every covering edge was
        past the staleness bound)."""
        self._geo_session_fallbacks_total.inc()

    def set_geo_gauges(self, edge: str, watermark: int, lag: int, depth: int) -> None:
        """Publish one edge's watermark / lag / queue-depth readings."""
        instruments = self._edge_instruments[edge]
        instruments["watermark"].set(watermark)
        instruments["lag"].set(lag)
        instruments["depth"].set(depth)

    # ------------------------------------------------------------- properties

    @property
    def failures(self) -> int:
        """``FAILED`` responses produced by the router."""
        return int(self._failures_total.value)

    @property
    def timeout_failures(self) -> int:
        """The subset of :attr:`failures` involving a stalled replica."""
        return int(self._timeout_failures_total.value)

    @property
    def failovers(self) -> int:
        """Requests answered by a sibling after their first choice faulted."""
        return int(self._failovers_total.value)

    @property
    def retries(self) -> int:
        """Extra full passes made over a shard's replicas (policy-driven)."""
        return int(self._retries_total.value)

    @property
    def degraded(self) -> int:
        """``DEGRADED`` responses served from the stale verdict cache."""
        return int(self._degraded_total.value)

    @property
    def budget_exhausted(self) -> int:
        """Requests whose whole retry budget was spent without a live answer."""
        return int(self._budget_exhausted_total.value)

    @property
    def unhealthy_replicas(self) -> int:
        """Replicas currently out of the regular routing rotation."""
        count = sum(
            1 for shard in self._health for health in shard if not health.healthy
        )
        self._unhealthy_gauge.set(count)
        return count

    @property
    def edge_reads(self) -> int:
        """Reads answered by the edge tier, every edge summed."""
        return sum(
            int(instruments["reads"].value)
            for instruments in self._edge_instruments.values()
        )

    @property
    def batches_shipped(self) -> int:
        """Queued batches the edge fleet has applied and acknowledged."""
        return sum(
            int(instruments["shipped"].value)
            for instruments in self._edge_instruments.values()
        )

    @property
    def session_fallbacks(self) -> int:
        """Reads forced off the edge tier by read-your-writes coverage."""
        return int(self._geo_session_fallbacks_total.value)

    # ------------------------------------------------------------- snapshots

    def _aggregate(
        self,
        services: Sequence[ValidationService],
        extra_errors: int = 0,
        failovers: int = 0,
        unhealthy: int = 0,
        retries: int = 0,
        degraded: int = 0,
        budget_exhausted: int = 0,
    ) -> MetricsSnapshot:
        snapshots = [service.metrics.snapshot() for service in services]
        latencies: List[float] = []
        for service in services:
            latencies.extend(service.metrics.latencies())
        completed = sum(snapshot.completed for snapshot in snapshots)
        batches = sum(snapshot.batches for snapshot in snapshots)
        batched_requests = sum(
            round(snapshot.mean_batch_size * snapshot.batches) for snapshot in snapshots
        )
        wall = max((snapshot.wall_seconds for snapshot in snapshots), default=0.0)

        def _exemplar_key(pair: Tuple[str, str]) -> Tuple[float, str]:
            le, trace_id = pair
            return (float("inf") if le == "+Inf" else float(le), trace_id)

        exemplars = sorted(
            {pair for snapshot in snapshots for pair in snapshot.exemplars},
            key=_exemplar_key,
        )
        return MetricsSnapshot(
            completed=completed,
            rejected=sum(snapshot.rejected for snapshot in snapshots),
            errors=sum(snapshot.errors for snapshot in snapshots) + extra_errors,
            cache_hits=sum(snapshot.cache_hits for snapshot in snapshots),
            cache_misses=sum(snapshot.cache_misses for snapshot in snapshots),
            batches=batches,
            mean_batch_size=batched_requests / batches if batches else 0.0,
            queue_depth=sum(snapshot.queue_depth for snapshot in snapshots),
            wall_seconds=wall,
            throughput_rps=completed / wall if wall > 0 else 0.0,
            p50_latency_s=percentile(latencies, 50),
            p95_latency_s=percentile(latencies, 95),
            p99_latency_s=percentile(latencies, 99),
            ingests=sum(snapshot.ingests for snapshot in snapshots),
            ingested_ops=sum(snapshot.ingested_ops for snapshot in snapshots),
            failovers=failovers,
            unhealthy_replicas=unhealthy,
            retries=retries,
            degraded=degraded,
            budget_exhausted=budget_exhausted,
            exemplars=tuple(exemplars),
        )

    def snapshot(self) -> MetricsSnapshot:
        """One fleet-wide roll-up across every replica of every shard."""
        with self._lock:
            adjustment = self._error_adjustment
        return self._aggregate(
            [service for group in self._groups for service in group],
            extra_errors=adjustment,
            failovers=self.failovers,
            unhealthy=self.unhealthy_replicas,
            retries=self.retries,
            degraded=self.degraded,
            budget_exhausted=self.budget_exhausted,
        )

    def collect_families(self) -> List[MetricFamily]:
        """Every fleet instrument as collected metric families.

        Per-replica registries are collected with injected ``shard`` and
        ``replica`` labels (they own identical unlabeled series — merging
        without the labels would collide), then merged with the router's
        own fleet counters.  This is the :class:`~repro.obs.timeseries.MetricsScraper`
        source for SLO evaluation and the ``obs top`` dashboard.
        """
        self.unhealthy_replicas  # refresh the gauge before collecting
        if self.geo_refresh is not None:
            self.geo_refresh()  # watermark/lag/depth gauges move between scrapes
        families = []
        for shard_index, group in enumerate(self._groups):
            for replica_index, service in enumerate(group):
                families.extend(
                    service.metrics.registry.collect(
                        {"shard": str(shard_index), "replica": str(replica_index)}
                    )
                )
        for edge_name, instruments in self._edge_instruments.items():
            families.extend(instruments["registry"].collect({"edge": edge_name}))
        families.extend(self.registry.collect())
        return families

    def exposition(self) -> str:
        """The whole fleet's instruments as one Prometheus-style text page."""
        return render_exposition(self.collect_families())

    def per_shard(self) -> List[MetricsSnapshot]:
        """One aggregated snapshot per logical shard (its replicas summed)."""
        return [self._aggregate(group) for group in self._groups]

    def per_replica(self) -> List[Tuple[int, int, MetricsSnapshot, ReplicaHealth]]:
        """``(shard, replica, snapshot, health)`` for every replica worker."""
        rows = []
        for shard_index, group in enumerate(self._groups):
            for replica_index, service in enumerate(group):
                rows.append(
                    (
                        shard_index,
                        replica_index,
                        service.metrics.snapshot(),
                        self._health[shard_index][replica_index],
                    )
                )
        return rows

    # ------------------------------------------------------------- rendering

    def format_shard_table(self, title: str = "Per-shard metrics") -> str:
        """One row per logical shard: the tail-latency/queue/shed roll-ups."""
        lines = [title, "-" * len(title)]
        header = (
            f"{'shard':>5}  {'completed':>9}  {'shed':>5}  {'errors':>6}  "
            f"{'p50 ms':>8}  {'p95 ms':>8}  {'p99 ms':>8}  {'queue':>5}  {'hit rate':>8}"
        )
        lines.append(header)
        for index, snapshot in enumerate(self.per_shard()):
            lines.append(
                f"{index:>5}  {snapshot.completed:>9}  {snapshot.rejected:>5}  "
                f"{snapshot.errors:>6}  {snapshot.p50_latency_s * 1000:>8.2f}  "
                f"{snapshot.p95_latency_s * 1000:>8.2f}  "
                f"{snapshot.p99_latency_s * 1000:>8.2f}  {snapshot.queue_depth:>5}  "
                f"{snapshot.cache_hit_rate:>8.1%}"
            )
        return "\n".join(lines)

    def format_replica_table(self, title: str = "Per-replica health") -> str:
        """One row per replica: health state, traffic, faults, probes."""
        lines = [title, "-" * len(title)]
        header = (
            f"{'shard':>5}  {'replica':>7}  {'state':>9}  {'served':>7}  "
            f"{'completed':>9}  {'faults':>6}  {'timeouts':>8}  {'probes':>6}  "
            f"{'p50 ms':>8}  {'queue':>5}"
        )
        lines.append(header)
        for shard_index, replica_index, snapshot, health in self.per_replica():
            state = "healthy" if health.healthy else "unhealthy"
            lines.append(
                f"{shard_index:>5}  {replica_index:>7}  {state:>9}  "
                f"{health.served:>7}  {snapshot.completed:>9}  "
                f"{health.failures:>6}  {health.timeouts:>8}  {health.probes:>6}  "
                f"{snapshot.p50_latency_s * 1000:>8.2f}  {snapshot.queue_depth:>5}"
            )
        return "\n".join(lines)


#: Constructor input: one service per shard (R=1), or one group per shard.
ShardServices = Union[
    Sequence[ValidationService], Sequence[Sequence[ValidationService]]
]


class ShardedValidationService:
    """Routes single-fact requests and mutations to their owning shard,
    load-balancing reads across each shard's replica group.

    Parameters
    ----------
    shards:
        Either a flat sequence of :class:`ValidationService` (one replica
        per shard — the PR 4 topology) or a sequence of replica groups
        (one inner sequence of services per logical shard; the first
        member of each group is the shard's primary for epoch reporting).
    ring:
        Routing ring; defaults to ``HashRing(num_shards)`` and must match
        the attached store's ring when one is given.
    store:
        The :class:`~repro.store.ShardedStore` of shard *primaries*; wires
        the :meth:`apply_mutations` write path.
    request_timeout_s:
        Per-attempt budget before a stalled replica is abandoned and the
        request fails over to a sibling.  ``None`` disables timeouts (a
        stalled replica then blocks its request, as any asyncio await
        would) — stall detection and health probing need it set.
    replica_groups:
        The per-shard :class:`~repro.store.ReplicaGroup` objects backing
        the replica services' stores (one store copy per service).  When
        given, every ingest is digest-verified across each owning group's
        live members.
    unhealthy_after:
        Consecutive faults before a replica leaves the routing rotation.
    probe_interval_s:
        Seconds an unhealthy replica rests before the balancer routes one
        canary request at it.
    retry_policy:
        Optional :class:`~repro.service.policy.RetryPolicy`.  When set, a
        request whose whole replica pass faults is retried (with backoff,
        inside the policy's deadline) up to the budget; after the budget is
        spent the router serves the last known good verdict for the
        coordinates as an epoch-tagged ``DEGRADED`` response when one
        exists, and only fails otherwise.  ``None`` keeps the PR 5
        behaviour: one pass, then ``FAILED``.
    clock:
        Injectable :class:`~repro.chaos.clock.Clock` for probe timers,
        retry backoff, and deadlines; defaults to the real
        :class:`~repro.chaos.clock.MonotonicClock`.  Tests pass a
        :class:`~repro.chaos.clock.VirtualClock` for deterministic timing.
    stale_cache_capacity:
        Bound on the last-known-good verdict cache backing graceful
        degradation (LRU-evicted beyond it).
    geo / edge_services:
        The asynchronous geo tier: a
        :class:`~repro.store.GeoReplicator` over the attached store's
        shards plus, per edge name, one :class:`ValidationService` per
        shard serving that edge's store copies.  Both or neither.  Edge
        replicas apply queued batches at their own pace (background drain
        loops on the router clock); reads carry a ``region`` hint to
        prefer an edge and are stamped with the edge's epoch vector and
        visible ``staleness_epochs``.
    staleness_bound_epochs:
        Edge reads whose owning-shard watermark trails the primary by
        more than this many epochs route to the primary tier instead —
        the visible-staleness bound.  ``None`` disables the bound.
    drain_interval_s / edge_lag_s:
        Seconds between drain ticks per edge (plus the per-edge extra lag
        from ``edge_lag_s`` — the injected-lag knob benches and chaos
        scenarios turn).  Writes never wait on a drain: the primary
        acknowledges as soon as its own tier applied.
    drain_batch_limit:
        Most queued batches one background drain tick may apply (default
        8); the rest wait for the next tick.  Bounding the slice keeps a
        backlogged edge from monopolising the event loop and
        back-pressuring primary writes through scheduling delay — the
        very coupling the async queues exist to prevent.  ``None``
        removes the cap.  :meth:`drain_edges` is never capped.
    drain_seed:
        Seed for the drain scheduler's shard-order shuffle.  Deterministic
        run-table columns must be byte-identical across drain seeds (the
        CI geo determinism re-run); only timing may move.

    Raises
    ------
    ValueError
        On empty shard lists, non-positive timeouts/thresholds, or a
        ring/store/replica-group shape that disagrees with ``shards``.
    """

    def __init__(
        self,
        shards: ShardServices,
        ring: Optional[HashRing] = None,
        store: Optional[ShardedStore] = None,
        request_timeout_s: Optional[float] = None,
        replica_groups: Optional[Sequence[ReplicaGroup]] = None,
        unhealthy_after: int = 1,
        probe_interval_s: float = 0.25,
        retry_policy: Optional[RetryPolicy] = None,
        clock: Optional[Clock] = None,
        stale_cache_capacity: int = 4096,
        geo: Optional[GeoReplicator] = None,
        edge_services: Optional[Mapping[str, Sequence[ValidationService]]] = None,
        staleness_bound_epochs: Optional[int] = None,
        drain_interval_s: float = 0.02,
        edge_lag_s: Optional[Mapping[str, float]] = None,
        drain_batch_limit: Optional[int] = 8,
        drain_seed: int = 0,
    ) -> None:
        if not shards:
            raise ValueError("a ShardedValidationService needs at least one shard")
        if request_timeout_s is not None and request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive when set")
        if unhealthy_after < 1:
            raise ValueError("unhealthy_after must be >= 1")
        if probe_interval_s <= 0:
            raise ValueError("probe_interval_s must be positive")
        if stale_cache_capacity < 1:
            raise ValueError("stale_cache_capacity must be >= 1")
        if isinstance(shards[0], ValidationService):
            self.groups: List[List[ValidationService]] = [
                [service] for service in shards  # type: ignore[list-item]
            ]
        else:
            self.groups = [list(group) for group in shards]  # type: ignore[arg-type]
        if any(not group for group in self.groups):
            raise ValueError("every shard needs at least one replica service")
        if len({len(group) for group in self.groups}) != 1:
            raise ValueError(
                "every shard needs the same number of replica services; got "
                f"{[len(group) for group in self.groups]}"
            )
        #: The shard primaries (first replica of each group) — the PR 4
        #: surface tests and callers index into.
        self.shards: List[ValidationService] = [group[0] for group in self.groups]
        self.store = store
        self.replica_groups = list(replica_groups) if replica_groups is not None else None
        if store is not None:
            if store.num_shards != len(self.groups):
                raise ValueError(
                    f"store partitions {store.num_shards} ways but "
                    f"{len(self.groups)} shard groups were given"
                )
            # One ring routes both reads and writes; a divergent ring would
            # judge facts on one shard and invalidate another.
            if ring is not None and ring != store.ring:
                raise ValueError("ring must match the attached store's ring")
            ring = store.ring
        if self.replica_groups is not None:
            if len(self.replica_groups) != len(self.groups):
                raise ValueError(
                    f"{len(self.replica_groups)} replica groups for "
                    f"{len(self.groups)} shards"
                )
            for index, (group, replica_group) in enumerate(
                zip(self.groups, self.replica_groups)
            ):
                if replica_group.num_replicas != len(group):
                    raise ValueError(
                        f"shard {index}: {len(group)} replica services but "
                        f"{replica_group.num_replicas} store copies"
                    )
        self.ring = ring or HashRing(len(self.groups))
        if self.ring.num_shards != len(self.groups):
            raise ValueError(
                f"ring routes over {self.ring.num_shards} shards but "
                f"{len(self.groups)} shard groups were given"
            )
        self.request_timeout_s = request_timeout_s
        self.unhealthy_after = unhealthy_after
        self.probe_interval_s = probe_interval_s
        self.retry_policy = retry_policy
        self.clock: Clock = clock or MonotonicClock()
        # Jitter source for retry backoff.  Seeded: backoff *timing* need
        # not be reproducible, but a fixed seed keeps runs comparable.
        self._retry_rng = random.Random(0x5EED)
        # Last known good verdict per request coordinates, with the owning
        # shard's epoch it was computed at — the graceful-degradation store.
        self._stale: "OrderedDict[tuple, Tuple[ValidationResult, int]]" = OrderedDict()
        self._stale_capacity = stale_cache_capacity
        # Chaos: armed via set_fault_injection; fires the "store" point on
        # the ingest path (replica-level points live on the services).
        self._injector = None
        # Observability: armed via set_observability; spans/events fan out
        # to every replica service and attached store.
        self._tracer: Optional[Tracer] = None
        self._events = None
        # Geo tier: replicator + per-edge per-shard services, or neither.
        if (geo is None) != (edge_services is None):
            raise ValueError("geo and edge_services come together (or not at all)")
        if geo is not None and store is None:
            raise ValueError("the geo tier needs the ShardedStore attached")
        if staleness_bound_epochs is not None and staleness_bound_epochs < 0:
            raise ValueError("staleness_bound_epochs must be >= 0 when set")
        if drain_interval_s <= 0:
            raise ValueError("drain_interval_s must be positive")
        if drain_batch_limit is not None and drain_batch_limit < 1:
            raise ValueError("drain_batch_limit must be >= 1 when set")
        self.geo = geo
        self.edge_services: Dict[str, List[ValidationService]] = (
            {name: list(services) for name, services in edge_services.items()}
            if edge_services is not None
            else {}
        )
        if self.geo is not None:
            for name, services in self.edge_services.items():
                if name not in self.geo.edges:
                    raise ValueError(f"edge {name!r} has services but no replicator edge")
                if len(services) != len(self.groups):
                    raise ValueError(
                        f"edge {name!r} has {len(services)} services for "
                        f"{len(self.groups)} shards"
                    )
        self.staleness_bound_epochs = staleness_bound_epochs
        self.drain_interval_s = drain_interval_s
        self.drain_batch_limit = drain_batch_limit
        self.edge_lag_s: Dict[str, float] = dict(edge_lag_s or {})
        self.drain_seed = drain_seed
        self._drain_rng = random.Random(drain_seed)
        self._drain_tasks: List[asyncio.Task] = []
        #: Drain-loop failures (a diverged edge, a crashed apply): the loop
        #: kills the edge and records the reason here for post-mortems.
        self.drain_errors: List[str] = []
        # Read-your-writes sessions: token -> {shard: last-write epoch}.
        self._sessions: Dict[str, Dict[int, int]] = {}
        # Edges hard-stopped by kill_edge (never rejoin without a bootstrap).
        self._edge_dead: set = set()
        # Edges whose bootstrap event was already emitted (start() is
        # re-entrant across stop()/start() cycles).
        self._edge_bootstrapped: set = set()
        self.health: List[List[ReplicaHealth]] = [
            [ReplicaHealth(shard_index, replica_index) for replica_index in range(len(group))]
            for shard_index, group in enumerate(self.groups)
        ]
        self.metrics = RouterMetrics(
            self.groups, self.health, edge_names=sorted(self.edge_services)
        )
        self.metrics.geo_refresh = self._refresh_geo_gauges
        self._rr = [0] * len(self.groups)
        self._closed = False
        # Replicas hard-stopped by kill_replica: their store copies missed
        # every ingest since the kill, so they must never rejoin — not even
        # across a stop()/start() cycle — without a fresh log ship.
        self._dead: set = set()
        # Serialises cross-shard ingests so the pre-validation below stays
        # true until the fan-out applies; (re)created in start() so a
        # router reused across event loops never holds a dead-loop lock.
        self._ingest_lock = asyncio.Lock()

    @classmethod
    def from_runner(
        cls,
        runner,
        num_shards: int,
        config: Optional[ServiceConfig] = None,
        telemetry: Optional[TelemetryCollector] = None,
        store: Optional[ShardedStore] = None,
        request_timeout_s: Optional[float] = None,
        replicas: int = 1,
        unhealthy_after: int = 1,
        probe_interval_s: float = 0.25,
        retry_policy: Optional[RetryPolicy] = None,
        clock: Optional[Clock] = None,
        edges: int = 0,
        staleness_bound_epochs: Optional[int] = None,
        drain_interval_s: float = 0.02,
        edge_lag_s: Optional[Mapping[str, float]] = None,
        drain_batch_limit: Optional[int] = 8,
        drain_seed: int = 0,
        queue_dir: Optional[str] = None,
    ) -> "ShardedValidationService":
        """``num_shards`` x ``replicas`` shard services over one runner.

        Each replica gets its own :class:`ValidationService` (own queues,
        workers, verdict cache, admission budget) built from the runner's
        strategy provider.  With a :class:`~repro.store.ShardedStore`
        attached and ``replicas > 1``, the store is grown into per-shard
        :class:`~repro.store.ReplicaGroup` copies (log-shipped from each
        shard's log) so every replica worker serves its own byte-identical
        store copy — the fleet shards remain the group primaries.

        ``edges > 0`` adds the asynchronous geo tier: a
        :class:`~repro.store.GeoReplicator` over the store (durable queues
        when ``queue_dir`` is set), with edges named ``edge-0`` …
        ``edge-{edges-1}``, each serving its own per-shard store copies
        bootstrapped by snapshot replay and caught up by background drain
        loops (``drain_interval_s`` plus any per-edge ``edge_lag_s``).

        Raises :class:`ValueError` when ``num_shards``/``replicas`` is not
        positive, the store partitions a different number of ways, or
        ``edges > 0`` without a store.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if edges < 0:
            raise ValueError("edges must be >= 0")
        if edges and store is None:
            raise ValueError("the geo tier needs a ShardedStore attached")
        if store is not None and store.num_shards != num_shards:
            raise ValueError(
                f"store partitions {store.num_shards} ways; asked for {num_shards}"
            )
        replica_groups: Optional[List[ReplicaGroup]] = None
        if store is not None and replicas > 1:
            replica_groups = store.replicate(replicas)
        groups: List[List[ValidationService]] = []
        for shard_index in range(num_shards):
            group = []
            for replica_index in range(replicas):
                if replica_groups is not None:
                    replica_store = replica_groups[shard_index].stores[replica_index]
                elif store is not None:
                    replica_store = store.shards[shard_index]
                else:
                    replica_store = None
                group.append(
                    ValidationService.from_runner(
                        runner, config, telemetry, store=replica_store
                    )
                )
            groups.append(group)
        geo: Optional[GeoReplicator] = None
        edge_services: Optional[Dict[str, List[ValidationService]]] = None
        if edges:
            geo = GeoReplicator(store, queue_dir=queue_dir)
            if replica_groups is not None:
                geo.wire_replicas(replica_groups)
            edge_services = {}
            for edge_index in range(edges):
                name = f"edge-{edge_index}"
                edge = geo.add_edge(name)
                edge_services[name] = [
                    ValidationService.from_runner(
                        runner, config, telemetry, store=edge.stores[shard_index]
                    )
                    for shard_index in range(num_shards)
                ]
        return cls(
            groups,
            store=store,
            request_timeout_s=request_timeout_s,
            replica_groups=replica_groups,
            unhealthy_after=unhealthy_after,
            probe_interval_s=probe_interval_s,
            retry_policy=retry_policy,
            clock=clock,
            geo=geo,
            edge_services=edge_services,
            staleness_bound_epochs=staleness_bound_epochs,
            drain_interval_s=drain_interval_s,
            edge_lag_s=edge_lag_s,
            drain_batch_limit=drain_batch_limit,
            drain_seed=drain_seed,
        )

    # ---------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Start every replica worker and reset routing/health state.

        Replicas removed by :meth:`kill_replica` stay stopped and
        unhealthy: their store copies missed every ingest since the kill,
        so restarting them would serve stale epochs and diverge the next
        log ship.
        """
        self._closed = False
        self._ingest_lock = asyncio.Lock()
        self._rr = [0] * len(self.groups)
        self.health = [
            [ReplicaHealth(shard_index, replica_index) for replica_index in range(len(group))]
            for shard_index, group in enumerate(self.groups)
        ]
        self.metrics = RouterMetrics(
            self.groups, self.health, edge_names=sorted(self.edge_services)
        )
        self.metrics.geo_refresh = self._refresh_geo_gauges if self.geo else None
        for shard_index, group in enumerate(self.groups):
            for replica_index, service in enumerate(group):
                if (shard_index, replica_index) in self._dead:
                    self.health[shard_index][replica_index].healthy = False
                    continue
                await service.start()
        for index, name in enumerate(sorted(self.edge_services)):
            if name in self._edge_dead:
                continue
            for service in self.edge_services[name]:
                await service.start()
            if name not in self._edge_bootstrapped:
                self._edge_bootstrapped.add(name)
                if self._events is not None:
                    self._events.emit(
                        "edge_bootstrap",
                        f"edge:{index}",
                        watermark=sum(self.geo.watermark_vector(name)),
                    )
        self._drain_tasks = [
            asyncio.ensure_future(self._drain_loop(name, index))
            for index, name in enumerate(sorted(self.edge_services))
            if name not in self._edge_dead
        ]

    async def stop(self, drain: bool = True) -> None:
        """Stop every replica; ``drain=True`` answers admitted requests first.

        Replicas stop concurrently, so the drain wall time is the slowest
        *healthy* replica's, not the sum — and crucially not an unhealthy
        replica's: a replica that is out of the rotation (stalled, killed,
        or marked via :meth:`mark_unhealthy`) is hard-stopped instead of
        drained, so a dead replica's stuck queue can never wedge shutdown.
        Its in-flight futures are cancelled explicitly (the PR 4 hard-stop
        contract), never silently dropped.  The exception is a group with
        no healthy sibling left (a single-replica shard after one fault,
        say): its unhealthy-but-running replicas are still the only path to
        an answer for their admitted requests, so they drain normally.
        """
        self._closed = True
        for task in self._drain_tasks:
            task.cancel()
        if self._drain_tasks:
            await asyncio.gather(*self._drain_tasks, return_exceptions=True)
        self._drain_tasks = []
        stops = []
        for name in sorted(self.edge_services):
            if name in self._edge_dead:
                continue
            for service in self.edge_services[name]:
                if not service._closed:
                    stops.append(service.stop(drain=drain))
        for shard_index, group in enumerate(self.groups):
            healths = self.health[shard_index]
            has_healthy_sibling = any(
                healths[index].healthy and not replica._closed
                for index, replica in enumerate(group)
            )
            for replica_index, service in enumerate(group):
                replica_drain = drain and not service._closed and (
                    healths[replica_index].healthy or not has_healthy_sibling
                )
                stops.append(service.stop(drain=replica_drain))
        await asyncio.gather(*stops)

    async def __aenter__(self) -> "ShardedValidationService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def kill_replica(self, shard_index: int, replica_index: int) -> None:
        """Hard-stop one replica in place (fault injection / ops eviction).

        The replica leaves the routing rotation immediately, its in-flight
        requests fail over to sibling replicas, and — because a stopped
        service cannot apply mutations — it stays out of the rotation for
        the rest of the router's life, *including across*
        ``stop()``/``start()`` cycles (rejoining would need a fresh log
        ship; its store copy misses every ingest from now on).  Raises
        :class:`IndexError` for out-of-range coordinates.
        """
        health = self.health[shard_index][replica_index]
        health.healthy = False
        health.marked_unhealthy_at = self.clock.now()
        self._dead.add((shard_index, replica_index))
        if self._events is not None:
            self._events.emit(
                "replica_killed", f"shard:{shard_index}/replica:{replica_index}"
            )
        await self.groups[shard_index][replica_index].stop(drain=False)

    def mark_unhealthy(self, shard_index: int, replica_index: int) -> None:
        """Evict one replica from the routing rotation by hand.

        The balancer stops sending regular traffic immediately; a health
        probe after ``probe_interval_s`` re-admits the replica if it still
        answers.  Raises :class:`IndexError` for out-of-range coordinates.
        """
        health = self.health[shard_index][replica_index]
        health.healthy = False
        health.marked_unhealthy_at = self.clock.now()

    # ---------------------------------------------------------------- geo tier

    @property
    def edge_names(self) -> List[str]:
        """Configured edge replica names, sorted (dead edges included)."""
        return sorted(self.edge_services)

    @property
    def live_edge_names(self) -> List[str]:
        """Edges still serving (not removed by :meth:`kill_edge`)."""
        return [name for name in sorted(self.edge_services) if name not in self._edge_dead]

    def watermark_vector(self, name: str) -> Tuple[int, ...]:
        """One edge's *reported* per-shard applied-epoch watermarks."""
        if self.geo is None:
            raise RuntimeError("no geo tier configured")
        return self.geo.watermark_vector(name)

    def session_vector(self, session: str) -> Dict[int, int]:
        """A session token's last-write epochs by shard (empty if unseen)."""
        return dict(self._sessions.get(session, {}))

    async def kill_edge(self, name: str) -> None:
        """Hard-stop one edge replica (fault injection / ops eviction).

        The edge leaves read routing immediately and its drain loop stops;
        its durable queue entries and reported watermarks stay put, so a
        recovered edge process can re-attach via
        :meth:`~repro.store.GeoReplicator.adopt_edge` and resume from
        exactly the batches it never acked.  Raises :class:`KeyError` for
        an unknown edge name.
        """
        if name not in self.edge_services:
            raise KeyError(f"unknown edge {name!r}")
        if name in self._edge_dead:
            return
        self._edge_dead.add(name)
        if self._events is not None:
            index = sorted(self.edge_services).index(name)
            self._events.emit("edge_killed", f"edge:{index}")
        await asyncio.gather(
            *(service.stop(drain=False) for service in self.edge_services[name])
        )

    async def drain_edges(
        self, name: Optional[str] = None, max_batches: Optional[int] = None
    ) -> int:
        """Drain queued batches into one edge (or every live edge) now.

        The background loops already drain at their own pace; this is the
        synchronous path for tests and scenario epilogues that must reach a
        converged state before checking digests.  Returns the number of
        batches applied.  Raises :class:`RuntimeError` without a geo tier.
        """
        if self.geo is None:
            raise RuntimeError("no geo tier configured")
        names = [name] if name is not None else self.live_edge_names
        applied = 0
        for edge_name in names:
            if edge_name in self._edge_dead:
                continue
            applied += await self._drain_edge(edge_name, max_batches)
        return applied

    async def _drain_edge(self, name: str, max_batches: Optional[int] = None) -> int:
        """Apply pending queue batches to one edge through its services.

        Batches land via each edge shard's :class:`ValidationService` (so
        the quiesce/cache-invalidation contract holds on the edge exactly
        as on the primary tier), in seeded-shuffled shard order — the drain
        scheduler whose interleavings the property suite sweeps.  Each
        landed batch is acked immediately: the edge store's own epoch is
        the durable watermark, so a crash between apply and ack costs only
        a redundant re-report, never a double-apply.
        """
        services = self.edge_services[name]
        shard_order = list(range(len(services)))
        self._drain_rng.shuffle(shard_order)
        applied = 0
        for shard_index in shard_order:
            queue = self.geo.queues[shard_index]
            service = services[shard_index]
            edge_store = service.store
            budget = None if max_batches is None else max_batches - applied
            if budget is not None and budget <= 0:
                break
            for epoch, batch in queue.pending_after(edge_store.epoch, limit=budget):
                report = await service.apply_mutations(batch)
                if report.epoch != epoch:
                    raise ReplicaDivergedError(
                        f"edge {name} shard {shard_index} landed epoch "
                        f"{report.epoch}, queue shipped {epoch}"
                    )
                queue.ack(name, epoch)
                self.metrics.observe_geo_ship(name)
                applied += 1
                if budget is not None:
                    budget -= 1
                    if budget <= 0:
                        break
        if applied and self._events is not None:
            index = sorted(self.edge_services).index(name)
            self._events.emit("edge_drain", f"edge:{index}", batches=applied)
        return applied

    async def _drain_loop(self, name: str, index: int) -> None:
        """One edge's background catch-up pump, on the router clock.

        Each tick sleeps ``drain_interval_s`` plus the edge's configured
        lag, consults the fault injector at point ``edge:{index}`` (kill →
        :meth:`kill_edge`; stall/error → skip the tick, the partition
        case — the edge keeps serving stale reads; slow → extra sleep),
        then drains at most ``drain_batch_limit`` queued batches so a
        deep backlog never monopolises the event loop.  Unexpected drain
        errors
        (divergence, a validation refusal) kill the edge and are recorded
        in :attr:`drain_errors` rather than dying silently in a task.
        """
        point = f"edge:{index}"
        try:
            while not self._closed:
                await self.clock.sleep(
                    self.drain_interval_s + self.edge_lag_s.get(name, 0.0)
                )
                if self._closed or name in self._edge_dead:
                    return
                if self._injector is not None:
                    events = self._injector.active_for(point)
                    if any(event.fault.kind == "kill" for event in events):
                        await self.kill_edge(name)
                        return
                    extra = sum(
                        event.fault.latency_s
                        for event in events
                        if event.fault.kind == "slow"
                    )
                    if extra:
                        await self.clock.sleep(extra)
                    if any(event.fault.kind in ("stall", "error") for event in events):
                        # The partition case: the queue stalls (no drain
                        # this tick) but the edge keeps serving stale reads.
                        continue
                try:
                    await self._drain_edge(name, self.drain_batch_limit)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    self.drain_errors.append(f"{name}: {exc!r}")
                    await self.kill_edge(name)
                    return
        except asyncio.CancelledError:
            return

    def _refresh_geo_gauges(self) -> None:
        """Push current watermark/lag/queue-depth readings per live edge."""
        if self.geo is None:
            return
        for name in self.live_edge_names:
            try:
                watermarks = self.geo.watermark_vector(name)
                lag = self.geo.lag_vector(name)
                depth = self.geo.depth(name)
            except KeyError:  # pragma: no cover - edge removed mid-collect
                continue
            self.metrics.set_geo_gauges(name, sum(watermarks), max(lag), depth)

    def _edge_for_read(
        self, shard_index: int, session: Optional[str], region: Optional[str]
    ) -> Optional[str]:
        """The edge eligible to serve this read, or ``None`` for primary.

        Eligibility is the read-your-writes contract made routable: the
        edge must be the caller's region, alive, its *reported* watermark
        vector must cover the session's whole last-write vector (the
        served response carries the edge's full epoch vector, so a floor
        miss on *any* written shard — not just the owning one — would let
        the session observe state below its own write), and — when a
        staleness bound is configured — the owning shard must trail the
        primary by at most that many epochs.  A region-matched edge
        rejected on the session/staleness check counts a
        ``session fallback``.
        """
        if region is None or self.geo is None:
            return None
        if region not in self.edge_services or region in self._edge_dead:
            return None
        if self.edge_services[region][shard_index]._closed:
            return None
        try:
            watermark = self.geo.queues[shard_index].watermark(region)
        except KeyError:
            return None
        if session is not None:
            floor = self._sessions.get(session, {})
            if floor:
                watermarks = self.geo.watermark_vector(region)
                if any(
                    watermarks[shard] < epoch for shard, epoch in floor.items()
                ):
                    self.metrics.observe_geo_session_fallback()
                    return None
        if self.staleness_bound_epochs is not None:
            primary_epoch = self.epoch_vector[shard_index]
            if primary_epoch - watermark > self.staleness_bound_epochs:
                self.metrics.observe_geo_session_fallback()
                return None
        return region

    async def _submit_edge(
        self, request: ServiceRequest, shard_index: int, edge_name: str
    ) -> Optional[ServiceResponse]:
        """Serve one read from an edge shard copy, or ``None`` to fall back.

        Any edge fault — a stall past the request timeout, a raise, a
        service stopped under us, or an admission rejection — returns
        ``None`` and the caller serves from the primary tier instead: the
        edge tier adds locality, never a new failure mode.  A served
        response is stamped with the *edge's* applied epoch vector (its
        true staleness, visible to the caller) and the epochs its owning
        shard copy trailed the primary at serve time.
        """
        service = self.edge_services[edge_name][shard_index]
        if service._closed:
            return None
        try:
            if self.request_timeout_s is not None:
                response = await asyncio.wait_for(
                    service.submit(request), timeout=self.request_timeout_s
                )
            else:
                response = await service.submit(request)
        except asyncio.CancelledError:
            if service._closed and not self._closed:
                return None
            raise
        except (asyncio.TimeoutError, Exception):
            return None
        if response.outcome is not RequestOutcome.COMPLETED:
            return None
        edge = self.geo.edges[edge_name]
        vector = edge.applied_vector
        staleness = max(self.epoch_vector[shard_index] - vector[shard_index], 0)
        self.metrics.observe_geo_read(edge_name)
        return dataclasses.replace(
            response,
            epoch=sum(vector),
            epoch_vector=vector,
            served_by=edge_name,
            staleness_epochs=staleness,
        )

    # ---------------------------------------------------------------- properties

    @property
    def num_shards(self) -> int:
        """Logical shard count (not the replica worker count)."""
        return len(self.groups)

    @property
    def num_replicas(self) -> int:
        """Replica workers per shard (uniform — the constructor rejects
        ragged groups)."""
        return len(self.groups[0])

    @property
    def pending(self) -> int:
        """Admitted-not-answered requests across every replica of the fleet."""
        return sum(service.pending for group in self.groups for service in group)

    @property
    def epoch_vector(self) -> Tuple[int, ...]:
        """Per-shard epochs: the max over each group's live replicas (a
        killed replica's lagging store copy never rolls the shard back)."""
        return tuple(
            max(service.epoch for service in group) for group in self.groups
        )

    @property
    def epoch(self) -> int:
        """Composite scalar epoch (sum of the per-shard epochs)."""
        return sum(self.epoch_vector)

    def shard_for(self, request: ServiceRequest) -> int:
        """The index of the shard owning one request's subject entity."""
        return self.ring.shard_for(request.fact.triple.subject)

    # ---------------------------------------------------------------- serving

    async def submit(
        self,
        request: ServiceRequest,
        session: Optional[str] = None,
        region: Optional[str] = None,
    ) -> ServiceResponse:
        """Route one request to its owning shard, failing over across replicas.

        With a geo tier configured, a ``region`` naming a live edge serves
        the read from that edge's local store copy when the edge is
        *eligible*: its reported watermark for the owning shard covers the
        ``session`` token's last write there (read-your-writes) and trails
        the primary by at most ``staleness_bound_epochs``.  Edge-served
        responses carry the edge's applied epoch vector, ``served_by`` and
        ``staleness_epochs`` — staleness is visible, never silent.  An
        ineligible, faulted, or unknown region falls back to the primary
        tier, so the edge tier never adds a failure mode.

        The balancer picks the least-loaded healthy replica first (round-
        robin tie-break); a faulted attempt — raise, stall past
        ``request_timeout_s``, or a replica killed mid-request — marks the
        replica and retries on the next sibling, so single-replica faults
        are invisible to the caller.  Load shedding still surfaces as
        ``REJECTED`` (that is the owning replica's admission control
        speaking, not a fault).

        When every replica of one pass faults and a ``retry_policy`` is
        set, the router backs off (jittered exponential, on the router
        clock) and makes another full pass, up to the budget and inside the
        policy's deadline.  After the budget is spent it serves the last
        known good verdict as a stale, epoch-tagged ``DEGRADED`` response
        when one exists; only then does the caller see a ``FAILED``
        response carrying the per-attempt error details.  Raises
        :class:`RuntimeError` when the router is stopped, and propagates
        :class:`asyncio.CancelledError` when the *caller* (or a router
        shutdown) cancels the request.

        With tracing armed (:meth:`set_observability`), the whole journey
        is one ``router.route`` span with a ``router.attempt`` child per
        pass and a ``replica.call`` child per replica tried; ``DEGRADED``
        responses tag the span with the stale verdict's epoch and its
        staleness, and the response carries the ``trace_id``.
        """
        if self._closed:
            raise RuntimeError("service is stopped")
        shard_index = self.shard_for(request)
        edge_name = self._edge_for_read(shard_index, session, region)
        if edge_name is not None:
            response = await self._submit_edge(request, shard_index, edge_name)
            if response is not None:
                return response
        if self._tracer is None:
            return self._stamp_tier(
                await self._submit_inner(request, shard_index, None)
            )
        with self._tracer.span("router.route", f"shard:{shard_index}") as span:
            span.attributes["method"] = request.method
            span.attributes["shard"] = shard_index
            response = self._stamp_tier(
                await self._submit_inner(request, shard_index, span)
            )
            span.attributes["outcome"] = response.outcome.name
            if response.outcome is RequestOutcome.FAILED:
                span.status = STATUS_FAILED
            elif response.outcome is RequestOutcome.REJECTED:
                span.status = STATUS_SHED
            elif response.outcome is RequestOutcome.DEGRADED:
                span.status = STATUS_DEGRADED
                stale_epoch = response.stale_epoch or 0
                span.attributes["stale_epoch"] = stale_epoch
                span.attributes["staleness_epochs"] = (
                    self.epoch_vector[shard_index] - stale_epoch
                )
            return dataclasses.replace(response, trace_id=span.trace_id)

    async def _submit_inner(
        self,
        request: ServiceRequest,
        shard_index: int,
        span: Optional[Span],
    ) -> ServiceResponse:
        started = time.perf_counter()
        policy = self.retry_policy
        max_attempts = policy.max_attempts if policy is not None else 1
        deadline = (
            self.clock.now() + policy.deadline_s
            if policy is not None and policy.deadline_s is not None
            else None
        )
        errors: List[str] = []
        counted_errors = 0
        timed_out = False
        retries = 0
        for attempt in range(max_attempts):
            if attempt:
                retries += 1
                self.metrics.observe_retry()
                backoff = policy.backoff_s(attempt, self._retry_rng)
                if deadline is not None:
                    # Deadline propagation: never sleep past the budget.
                    backoff = min(backoff, max(0.0, deadline - self.clock.now()))
                if backoff > 0:
                    await self.clock.sleep(backoff)
            if deadline is not None and deadline - self.clock.now() <= 0:
                errors.append(
                    f"deadline of {policy.deadline_s:.3f}s exhausted "
                    f"after {attempt} of {max_attempts} attempts"
                )
                break
            with maybe_span(
                self._tracer, "router.attempt", f"shard:{shard_index}", parent=span
            ) as attempt_span:
                if attempt_span is not None:
                    attempt_span.attributes["attempt"] = attempt + 1
                response, pass_counted, pass_timed_out = await self._attempt(
                    request, shard_index, errors, deadline
                )
                if attempt_span is not None and response is None:
                    attempt_span.status = STATUS_FAILED
                    attempt_span.attributes["error"] = "all replicas faulted"
            counted_errors += pass_counted
            timed_out = timed_out or pass_timed_out
            if response is not None:
                if errors:
                    self.metrics.observe_failover(counted_errors)
                    if self._events is not None:
                        self._events.emit(
                            "failover",
                            f"shard:{shard_index}",
                            faulted_attempts=len(errors),
                        )
                self._remember_verdict(request, response)
                if retries:
                    response = dataclasses.replace(response, retries=retries)
                return self._stamp(response, shard_index)
        if not errors:  # pragma: no cover - defensive: empty order
            errors.append(f"shard {shard_index} has no serving replicas")
        if policy is not None:
            self.metrics.observe_budget_exhausted()
            if self._events is not None:
                self._events.emit(
                    "budget_exhausted",
                    f"shard:{shard_index}",
                    attempts=max_attempts,
                    retries=retries,
                )
            degraded = self._degraded_response(request, started, retries, errors)
            if degraded is not None:
                lag = None
                if degraded.stale_epoch is not None:
                    lag = max(self.epoch_vector[shard_index] - degraded.stale_epoch, 0)
                self.metrics.observe_degraded(counted_errors, staleness_epochs=lag)
                return degraded
        self.metrics.observe_failure(timeout=timed_out, counted_errors=counted_errors)
        return self._failed_response(started, shard_index, "; ".join(errors), retries)

    async def _attempt(
        self,
        request: ServiceRequest,
        shard_index: int,
        errors: List[str],
        deadline: Optional[float],
    ) -> Tuple[Optional[ServiceResponse], int, bool]:
        """One full pass over the owning shard's replicas.

        Returns ``(response, counted_errors, timed_out)``: the first
        replica's answer (``None`` when every replica faulted), how many
        faulted attempts the owning workers already counted in their own
        ``errors``, and whether a stall past the per-attempt timeout (or
        the deadline's remainder, whichever is tighter) contributed.
        """
        group = self.groups[shard_index]
        counted_errors = 0
        timed_out = False
        for replica_index in self._replica_order(shard_index):
            service = group[replica_index]
            label = self._replica_label(shard_index, replica_index)
            timeout_s = self.request_timeout_s
            if deadline is not None:
                remaining = deadline - self.clock.now()
                if remaining <= 0:
                    errors.append(
                        f"request deadline exhausted before trying {label}"
                    )
                    break
                timeout_s = remaining if timeout_s is None else min(timeout_s, remaining)
            if service._closed:
                errors.append(f"{label} is stopped")
                self._record_failure(shard_index, replica_index)
                continue
            try:
                with maybe_span(
                    self._tracer,
                    "replica.call",
                    f"shard:{shard_index}/replica:{replica_index}",
                ) as call_span:
                    if timeout_s is not None:
                        response = await asyncio.wait_for(
                            service.submit(request), timeout=timeout_s
                        )
                    else:
                        response = await service.submit(request)
                    if (
                        call_span is not None
                        and response.outcome is RequestOutcome.REJECTED
                    ):
                        call_span.status = STATUS_SHED
            except asyncio.TimeoutError:
                timed_out = True
                errors.append(f"{label} stalled past {timeout_s:.3f}s")
                self._record_failure(shard_index, replica_index, timeout=True)
                continue
            except asyncio.CancelledError:
                if service._closed and not self._closed:
                    # The replica was hard-stopped under us (kill_replica):
                    # its future cancellation is a replica fault to fail
                    # over from, not our caller cancelling.
                    errors.append(f"{label} was stopped mid-request")
                    self._record_failure(shard_index, replica_index)
                    continue
                # Caller cancellation: release an in-flight canary so the
                # replica stays probe-eligible for the next request.
                self.health[shard_index][replica_index].probing = False
                raise
            except Exception as exc:
                if not (isinstance(exc, RuntimeError) and service._closed):
                    # The owning worker counted this admitted-but-failed
                    # request in its own errors counter; remember it so the
                    # fleet snapshot never double-counts after a failover.
                    counted_errors += 1
                errors.append(f"{label} failed: {exc!r}")
                self._record_failure(shard_index, replica_index)
                continue
            self._record_success(shard_index, replica_index)
            return response, counted_errors, timed_out
        return None, counted_errors, timed_out

    async def submit_many(
        self, requests: Sequence[ServiceRequest]
    ) -> List[ServiceResponse]:
        """Scatter a multi-fact batch across shards, gather in submission order.

        The fan-out is concurrent per shard; the merge is deterministic —
        ``responses[i]`` answers ``requests[i]`` regardless of shard
        completion order, so gathered verdicts are byte-identical to the
        unsharded service's for the same coordinates.  A failing request
        occupies its slot with a ``FAILED`` response; it never silently
        drops or fails its neighbours.
        """
        responses: List[Optional[ServiceResponse]] = [None] * len(requests)

        async def issue(position: int, request: ServiceRequest) -> None:
            responses[position] = await self.submit(request)

        await asyncio.gather(
            *(issue(position, request) for position, request in enumerate(requests))
        )
        return [response for response in responses if response is not None]

    # ---------------------------------------------------------------- ingestion

    async def apply_mutations(
        self, mutations: Sequence[Mutation], session: Optional[str] = None
    ) -> ShardApplyReport:
        """Route a mutation batch to its owning shards; ship to every replica.

        A ``session`` token records the landed per-shard epochs as the
        session's last-write vector: subsequent :meth:`submit` calls with
        the same token only route to edges whose watermarks cover it —
        the read-your-writes contract.  Writes always land on the primary
        tier; edges catch up asynchronously through their queues.

        Each owning shard's replicas quiesce *themselves* (drain their
        in-flight reads, apply the identical batch to their own store copy,
        bump their epoch) while the rest of the fleet keeps serving — the
        per-shard invalidation contract: only the mutated shard's cached
        verdicts go stale.  With replicated stores attached, the group is
        digest-verified after the ship (:class:`ReplicaDivergedError` on
        any drift); replicas whose workers were killed are skipped and stay
        out of the rotation (their store copies stop at the pre-ingest
        epoch).

        The all-or-nothing contract of :meth:`ShardedStore.apply` extends
        to this path: every sub-batch is validated against its shard
        *before* any shard applies (cross-shard ingests serialise on a
        router lock so the validation stays true through the fan-out), so
        a rejected batch raises :class:`ValueError` without mutating or
        epoch-bumping any replica.  Raises :class:`RuntimeError` when the
        router is stopped or no store is attached.
        """
        if self._closed:
            raise RuntimeError("service is stopped")
        if self.store is None:
            raise RuntimeError("no ShardedStore attached to this service")
        if self._injector is not None:
            # Chaos write-path fault point: an active error/kill fault fails
            # the ingest explicitly before any shard is touched.
            await self._injector.fire("store")
        batch = list(mutations)
        if not batch:
            raise ValueError("mutation batch must not be empty")
        groups_map = self.store.route(batch)
        indexes = sorted(groups_map)
        async with self._ingest_lock:
            # Liveness and validation both run for EVERY owning shard before
            # ANY shard applies, so a doomed batch leaves the fleet
            # untouched.  Validation uses each shard's first *live*
            # replica's store: a killed primary's copy stops at its death
            # epoch and no longer reflects the state the live replicas
            # would apply against.
            live_by_shard: dict = {}
            for index in indexes:
                live = []
                for replica_index, service in enumerate(self.groups[index]):
                    if service._closed:
                        # A killed replica cannot apply; it must never
                        # rejoin the rotation with a stale store copy.
                        self.health[index][replica_index].healthy = False
                        continue
                    live.append(service)
                if not live:
                    raise RuntimeError(
                        f"shard {index} has no live replicas to apply the batch"
                    )
                live_by_shard[index] = live
            for index in indexes:
                validation_store = live_by_shard[index][0].store
                if validation_store is None:
                    validation_store = self.store.shards[index]
                validation_store._validate(groups_map[index])

            async def apply_to_shard(index: int):
                reports = await asyncio.gather(
                    *(
                        service.apply_mutations(groups_map[index])
                        for service in live_by_shard[index]
                    )
                )
                self._verify_group(index)
                return reports[0]

            reports = await asyncio.gather(
                *(apply_to_shard(index) for index in indexes)
            )
            if session is not None:
                vector = self._sessions.setdefault(session, {})
                for index, report in zip(indexes, reports):
                    vector[index] = max(vector.get(index, 0), report.epoch)
        return ShardApplyReport(tuple(zip(indexes, reports)), self.epoch_vector)

    # ---------------------------------------------------------------- chaos

    def set_fault_injection(self, injector) -> None:
        """Arm (or with ``injector=None`` disarm) chaos fault injection.

        Compiles the injector's fault points into every layer this router
        fronts: each replica service fires ``shard:{i}/replica:{j}`` before
        executing a micro-batch, the router fires ``store`` on the ingest
        path, and the attached :class:`~repro.store.ShardedStore` /
        per-shard :class:`~repro.store.ReplicaGroup` objects check
        ``store`` / ``store/ship`` inside their synchronous apply paths.
        ``kill`` events are *not* fired here — the scenario driver consumes
        :meth:`~repro.chaos.faults.FaultInjector.due_kills` and calls
        :meth:`kill_replica` so kills share the ops-eviction semantics.

        The geo tier's ``edge:{i}`` points are consulted by each edge's
        background drain loop directly (kill → :meth:`kill_edge`;
        stall/error → the queue stalls while the edge keeps serving
        epoch-stamped stale reads; slow → added drain lag).  Edge *read*
        paths are deliberately not armed: a partitioned edge that still
        answers is the semantics under test.
        """
        self._injector = injector
        for shard_index, group in enumerate(self.groups):
            for replica_index, service in enumerate(group):
                service.set_fault_injection(
                    injector, f"shard:{shard_index}/replica:{replica_index}"
                )
        if self.store is not None:
            self.store.fault_injector = injector
        if self.replica_groups is not None:
            for replica_group in self.replica_groups:
                replica_group.fault_injector = injector

    # ---------------------------------------------------------------- observability

    def set_observability(self, obs: Optional[Observability]) -> None:
        """Arm (or with ``obs=None`` disarm) tracing and event logging.

        Fans the bundle's tracer and event log out to every layer this
        router fronts: each replica service traces ``service.submit`` /
        ``worker.execute`` / ``store.read`` under the point label
        ``shard:{i}/replica:{j}`` and emits quiesce events; the attached
        store shards / replica groups trace ``store.apply`` and
        ``store.ship``; the router itself traces ``router.route`` /
        ``router.attempt`` / ``replica.call`` and emits health, failover,
        and budget events.
        """
        tracer = obs.tracer if obs is not None else None
        events = obs.events if obs is not None else None
        self._tracer = tracer
        self._events = events
        for shard_index, group in enumerate(self.groups):
            for replica_index, service in enumerate(group):
                service.set_observability(
                    tracer, events, f"shard:{shard_index}/replica:{replica_index}"
                )
        for edge_index, name in enumerate(sorted(self.edge_services)):
            for shard_index, service in enumerate(self.edge_services[name]):
                service.set_observability(
                    tracer, events, f"edge:{edge_index}/shard:{shard_index}"
                )
                if service.store is not None:
                    service.store.tracer = tracer
        if self.store is not None:
            for shard in self.store.shards:
                shard.tracer = tracer
        if self.replica_groups is not None:
            for replica_group in self.replica_groups:
                replica_group.tracer = tracer
                for store in replica_group.stores:
                    store.tracer = tracer

    # ---------------------------------------------------------------- internals

    def _stale_key(self, request: ServiceRequest) -> tuple:
        # The verdict-cache key minus its epoch component: the whole point
        # of the stale store is answering across epochs.
        return verdict_cache_key(request.fact, request.method, request.model, epoch=0)[1:]

    def _remember_verdict(self, request: ServiceRequest, response: ServiceResponse) -> None:
        """Retain the last known good verdict (and the owning shard's epoch
        it was computed at) for graceful degradation."""
        if response.outcome is not RequestOutcome.COMPLETED or response.result is None:
            return
        key = self._stale_key(request)
        # ``response.epoch`` is pre-stamp here: the owning shard's epoch.
        self._stale[key] = (response.result, response.epoch)
        self._stale.move_to_end(key)
        while len(self._stale) > self._stale_capacity:
            self._stale.popitem(last=False)

    def _degraded_response(
        self,
        request: ServiceRequest,
        started: float,
        retries: int,
        errors: List[str],
    ) -> Optional[ServiceResponse]:
        """The stale last-known-good answer, or ``None`` when the request's
        coordinates were never answered (degradation has nothing to serve)."""
        entry = self._stale.get(self._stale_key(request))
        if entry is None:
            return None
        result, stale_epoch = entry
        self._stale.move_to_end(self._stale_key(request))
        vector = self.epoch_vector
        return ServiceResponse(
            outcome=RequestOutcome.DEGRADED,
            result=result,
            cached=True,
            latency_seconds=time.perf_counter() - started,
            epoch=sum(vector),
            epoch_vector=vector,
            error="; ".join(errors),
            retries=retries,
            stale_epoch=stale_epoch,
        )

    def _replica_label(self, shard_index: int, replica_index: int) -> str:
        if len(self.groups[shard_index]) == 1:
            return f"shard {shard_index}"
        return f"shard {shard_index} replica {replica_index}"

    def _replica_order(self, shard_index: int) -> List[int]:
        """Balancer pick order: probe-due canary, then healthy replicas by
        queue depth (round-robin tie-break), then unhealthy last resorts.

        Unhealthy-but-running replicas stay at the tail so a shard whose
        every replica is marked down still *tries* (a request is the
        cheapest probe there is) instead of failing instantly; stopped
        replicas are skipped by :meth:`submit` outright.
        """
        group = self.groups[shard_index]
        healths = self.health[shard_index]
        if len(group) == 1:
            return [0]
        offset = self._rr[shard_index]
        self._rr[shard_index] = (offset + 1) % len(group)
        now = self.clock.now()
        healthy: List[int] = []
        due: List[int] = []
        resting: List[int] = []
        for replica_index, health in enumerate(healths):
            if group[replica_index]._closed:
                continue
            if health.healthy:
                healthy.append(replica_index)
            elif (
                not health.probing
                and health.marked_unhealthy_at is not None
                and now - health.marked_unhealthy_at >= self.probe_interval_s
            ):
                due.append(replica_index)
            else:
                resting.append(replica_index)
        healthy.sort(
            key=lambda index: (group[index].pending, (index - offset) % len(group))
        )
        order: List[int] = []
        if due:
            probe = min(due, key=lambda index: healths[index].marked_unhealthy_at)
            probe_health = healths[probe]
            probe_health.probing = True
            probe_health.probes += 1
            order.append(probe)
            resting.extend(index for index in due if index != probe)
        order.extend(healthy)
        order.extend(sorted(resting))
        return order

    def _record_success(self, shard_index: int, replica_index: int) -> None:
        health = self.health[shard_index][replica_index]
        health.served += 1
        health.consecutive_failures = 0
        health.probing = False
        if not health.healthy:
            health.healthy = True
            health.marked_unhealthy_at = None
            health.readmissions += 1
            if self._events is not None:
                self._events.emit(
                    "replica_recovered",
                    f"shard:{shard_index}/replica:{replica_index}",
                    readmissions=health.readmissions,
                )

    def _record_failure(
        self, shard_index: int, replica_index: int, timeout: bool = False
    ) -> None:
        health = self.health[shard_index][replica_index]
        health.failures += 1
        if timeout:
            health.timeouts += 1
        health.consecutive_failures += 1
        health.probing = False
        if health.consecutive_failures >= self.unhealthy_after:
            if health.healthy and self._events is not None:
                self._events.emit(
                    "replica_unhealthy",
                    f"shard:{shard_index}/replica:{replica_index}",
                    consecutive_failures=health.consecutive_failures,
                    timeout=timeout,
                )
            health.healthy = False
        # Every fault re-anchors the probe timer, so a failed canary rests
        # the replica for another full interval before the next one.
        health.marked_unhealthy_at = self.clock.now()

    def _verify_group(self, shard_index: int) -> None:
        """Lockstep-check one shard's live replica stores after a ship.

        Epochs are always compared (O(1)); the full state-digest pass —
        which hashes the whole graph + corpus per replica, a cost that
        scales with store size rather than batch size — honours the
        group's ``verify_digests`` knob so large deployments can opt out.
        """
        if self.replica_groups is None:
            return
        replica_group = self.replica_groups[shard_index]
        live = [
            store
            for service, store in zip(self.groups[shard_index], replica_group.stores)
            if not service._closed
        ]
        epochs = {store.epoch for store in live}
        diverged = len(epochs) != 1
        if not diverged and replica_group.verify_digests:
            digests = {
                store.state_digest(include_index=replica_group.include_index)
                for store in live
            }
            diverged = len(digests) != 1
        if diverged:
            raise ReplicaDivergedError(
                f"shard {shard_index} replicas diverged after log ship "
                f"(epochs {sorted(epochs)})"
            )

    def _stamp(self, response: ServiceResponse, index: int) -> ServiceResponse:
        """Attach the composite epoch vector; the owning shard's component is
        the per-shard epoch the response was actually served at."""
        vector = list(self.epoch_vector)
        vector[index] = response.epoch
        return dataclasses.replace(
            response, epoch=sum(vector), epoch_vector=tuple(vector)
        )

    def _stamp_tier(self, response: ServiceResponse) -> ServiceResponse:
        """With a geo tier configured, mark primary-served responses as such
        (``staleness_epochs=0``: the primary is never stale to itself).
        Without one, responses stay exactly as before the geo tier existed."""
        if self.geo is None:
            return response
        return dataclasses.replace(response, served_by="primary", staleness_epochs=0)

    def _failed_response(
        self, started: float, index: int, error: str, retries: int = 0
    ) -> ServiceResponse:
        return ServiceResponse(
            outcome=RequestOutcome.FAILED,
            result=None,
            cached=False,
            latency_seconds=time.perf_counter() - started,
            epoch=self.epoch,
            epoch_vector=self.epoch_vector,
            error=error,
            retries=retries,
        )
