"""Sharded multi-worker serving tier: scatter-gather routing over N shards.

:class:`ShardedValidationService` fronts N independent
:class:`~repro.service.server.ValidationService` workers, one per
:class:`~repro.store.sharding.ShardedStore` shard, and exposes the same
surface the unsharded service does (``submit`` / ``apply_mutations`` /
``metrics`` / async context manager), so the TCP front-end, the load
generator, and the CLI drive either interchangeably.

Routing and consistency:

* **Reads** route by consistent hash of the fact's subject entity — the
  same :class:`~repro.store.sharding.HashRing` the store partition uses —
  so a fact is always judged (and its verdict cached) on its owning shard.
* **Batches** scatter-gather: :meth:`submit_many` fans a multi-fact batch
  out to the owning shards concurrently and merges the responses back in
  submission order — a deterministic merge, so the gathered verdicts are
  byte-identical to the unsharded service (and to the offline pipeline)
  for the same coordinates.
* **Writes** route by the same key (:func:`mutation_shard_key`).  Each
  owning shard quiesces, applies, and bumps *its own* epoch while the
  other shards keep serving — ingest never pauses the whole fleet, and
  because verdict-cache keys carry the per-shard epoch, an ingest
  invalidates only the owning shard's cached verdicts.
* **Faults surface, never hang**: a shard whose strategy raises produces
  an explicit ``FAILED`` response (the co-routed requests on other shards
  are unaffected), and a shard that stalls past ``request_timeout_s``
  is abandoned with a ``FAILED`` response instead of blocking the client.

Every response is stamped with the composite epoch vector
(``ServiceResponse.epoch_vector``) and its scalar sum, so clients can
reason about which shard versions an answer reflects.
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading
import time
from typing import List, Optional, Sequence, Tuple

from ..llm.telemetry import TelemetryCollector
from ..store import Mutation, ShardApplyReport, ShardedStore
from ..store.sharding import HashRing
from .config import ServiceConfig
from .metrics import MetricsSnapshot, percentile
from .server import RequestOutcome, ServiceRequest, ServiceResponse, ValidationService

__all__ = ["RouterMetrics", "ShardedValidationService"]


class RouterMetrics:
    """Aggregating view over the per-shard :class:`ServiceMetrics`.

    Counters sum across shards; latency percentiles are computed over the
    *concatenated* per-shard windows (per-shard percentiles cannot be
    averaged); wall time is the longest shard window and fleet throughput
    is total completions over that wall.  ``failures`` counts every
    ``FAILED`` response the router produced; only the *timeout* subset is
    folded into the snapshot's ``errors`` counter — a shard whose strategy
    raised has already counted that request in its own ``errors`` (see
    ``ValidationService.submit``), so ``completed + rejected + errors``
    accounts for every non-ingest request exactly once.
    """

    def __init__(self, services: Sequence[ValidationService]) -> None:
        self._services = list(services)
        self._failures = 0
        self._timeout_failures = 0
        self._lock = threading.Lock()

    def observe_failure(self, timeout: bool = False) -> None:
        """One ``FAILED`` response; ``timeout=True`` when the shard never
        answered (those are invisible to the shard's own error counter)."""
        with self._lock:
            self._failures += 1
            if timeout:
                self._timeout_failures += 1

    @property
    def failures(self) -> int:
        with self._lock:
            return self._failures

    @property
    def timeout_failures(self) -> int:
        with self._lock:
            return self._timeout_failures

    def per_shard(self) -> List[MetricsSnapshot]:
        return [service.metrics.snapshot() for service in self._services]

    def snapshot(self) -> MetricsSnapshot:
        snapshots = self.per_shard()
        latencies: List[float] = []
        for service in self._services:
            latencies.extend(service.metrics.latencies())
        completed = sum(snapshot.completed for snapshot in snapshots)
        batches = sum(snapshot.batches for snapshot in snapshots)
        batched_requests = sum(
            round(snapshot.mean_batch_size * snapshot.batches) for snapshot in snapshots
        )
        wall = max((snapshot.wall_seconds for snapshot in snapshots), default=0.0)
        return MetricsSnapshot(
            completed=completed,
            rejected=sum(snapshot.rejected for snapshot in snapshots),
            errors=sum(snapshot.errors for snapshot in snapshots)
            + self.timeout_failures,
            cache_hits=sum(snapshot.cache_hits for snapshot in snapshots),
            cache_misses=sum(snapshot.cache_misses for snapshot in snapshots),
            batches=batches,
            mean_batch_size=batched_requests / batches if batches else 0.0,
            queue_depth=sum(snapshot.queue_depth for snapshot in snapshots),
            wall_seconds=wall,
            throughput_rps=completed / wall if wall > 0 else 0.0,
            p50_latency_s=percentile(latencies, 50),
            p95_latency_s=percentile(latencies, 95),
            p99_latency_s=percentile(latencies, 99),
            ingests=sum(snapshot.ingests for snapshot in snapshots),
            ingested_ops=sum(snapshot.ingested_ops for snapshot in snapshots),
        )

    def format_shard_table(self, title: str = "Per-shard metrics") -> str:
        """One row per shard: the tail-latency/queue/shed roll-up inputs."""
        lines = [title, "-" * len(title)]
        header = (
            f"{'shard':>5}  {'completed':>9}  {'shed':>5}  {'errors':>6}  "
            f"{'p50 ms':>8}  {'p95 ms':>8}  {'p99 ms':>8}  {'queue':>5}  {'hit rate':>8}"
        )
        lines.append(header)
        for index, snapshot in enumerate(self.per_shard()):
            lines.append(
                f"{index:>5}  {snapshot.completed:>9}  {snapshot.rejected:>5}  "
                f"{snapshot.errors:>6}  {snapshot.p50_latency_s * 1000:>8.2f}  "
                f"{snapshot.p95_latency_s * 1000:>8.2f}  "
                f"{snapshot.p99_latency_s * 1000:>8.2f}  {snapshot.queue_depth:>5}  "
                f"{snapshot.cache_hit_rate:>8.1%}"
            )
        return "\n".join(lines)


class ShardedValidationService:
    """Routes single-fact requests and mutations to their owning shard."""

    def __init__(
        self,
        shards: Sequence[ValidationService],
        ring: Optional[HashRing] = None,
        store: Optional[ShardedStore] = None,
        request_timeout_s: Optional[float] = None,
    ) -> None:
        if not shards:
            raise ValueError("a ShardedValidationService needs at least one shard")
        if request_timeout_s is not None and request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive when set")
        self.shards: List[ValidationService] = list(shards)
        self.store = store
        if store is not None:
            if store.num_shards != len(self.shards):
                raise ValueError(
                    f"store partitions {store.num_shards} ways but "
                    f"{len(self.shards)} shard services were given"
                )
            # One ring routes both reads and writes; a divergent ring would
            # judge facts on one shard and invalidate another.
            if ring is not None and ring != store.ring:
                raise ValueError("ring must match the attached store's ring")
            ring = store.ring
        self.ring = ring or HashRing(len(self.shards))
        if self.ring.num_shards != len(self.shards):
            raise ValueError(
                f"ring routes over {self.ring.num_shards} shards but "
                f"{len(self.shards)} shard services were given"
            )
        self.request_timeout_s = request_timeout_s
        self.metrics = RouterMetrics(self.shards)
        self._closed = False
        # Serialises cross-shard ingests so the pre-validation below stays
        # true until the fan-out applies; (re)created in start() so a
        # router reused across event loops never holds a dead-loop lock.
        self._ingest_lock = asyncio.Lock()

    @classmethod
    def from_runner(
        cls,
        runner,
        num_shards: int,
        config: Optional[ServiceConfig] = None,
        telemetry: Optional[TelemetryCollector] = None,
        store: Optional[ShardedStore] = None,
        request_timeout_s: Optional[float] = None,
    ) -> "ShardedValidationService":
        """N shard services over one ``BenchmarkRunner``'s substrates.

        Each shard gets its own :class:`ValidationService` (own queues,
        workers, verdict cache, admission budget) built from the runner's
        strategy provider, plus its slice of ``store`` when a
        :class:`~repro.store.ShardedStore` (e.g.
        ``runner.sharded_store(dataset, num_shards)``) is attached.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if store is not None and store.num_shards != num_shards:
            raise ValueError(
                f"store partitions {store.num_shards} ways; asked for {num_shards}"
            )
        shards = [
            ValidationService.from_runner(
                runner,
                config,
                telemetry,
                store=store.shards[index] if store is not None else None,
            )
            for index in range(num_shards)
        ]
        return cls(shards, store=store, request_timeout_s=request_timeout_s)

    # ---------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        self._closed = False
        self._ingest_lock = asyncio.Lock()
        for shard in self.shards:
            await shard.start()

    async def stop(self, drain: bool = True) -> None:
        """Stop every shard; ``drain=True`` answers all admitted requests first.

        Shards stop concurrently, so the drain wall time is the slowest
        shard's, not the sum.
        """
        self._closed = True
        await asyncio.gather(*(shard.stop(drain=drain) for shard in self.shards))

    async def __aenter__(self) -> "ShardedValidationService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ---------------------------------------------------------------- properties

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def pending(self) -> int:
        """Admitted-not-answered requests across the fleet."""
        return sum(shard.pending for shard in self.shards)

    @property
    def epoch_vector(self) -> Tuple[int, ...]:
        return tuple(shard.epoch for shard in self.shards)

    @property
    def epoch(self) -> int:
        """Composite scalar epoch (sum of the per-shard epochs)."""
        return sum(self.epoch_vector)

    def shard_for(self, request: ServiceRequest) -> int:
        """The index of the shard owning one request's subject entity."""
        return self.ring.shard_for(request.fact.triple.subject)

    # ---------------------------------------------------------------- serving

    async def submit(self, request: ServiceRequest) -> ServiceResponse:
        """Route one request to its owning shard; faults surface as ``FAILED``.

        Load shedding still surfaces as ``REJECTED`` (that is the owning
        shard's admission control speaking); a shard that raises — or
        stalls past ``request_timeout_s`` — produces a ``FAILED`` response
        with the error detail instead of an exception or a hang.
        """
        if self._closed:
            raise RuntimeError("service is stopped")
        index = self.shard_for(request)
        shard = self.shards[index]
        started = time.perf_counter()
        try:
            if self.request_timeout_s is not None:
                response = await asyncio.wait_for(
                    shard.submit(request), timeout=self.request_timeout_s
                )
            else:
                response = await shard.submit(request)
        except asyncio.TimeoutError:
            self.metrics.observe_failure(timeout=True)
            return self._failed_response(
                started,
                index,
                f"shard {index} stalled past {self.request_timeout_s:.3f}s",
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # The shard's own metrics already counted admitted-but-failed
            # batches; the router only converts the exception into an
            # explicit outcome so scatter-gather callers never lose a slot.
            self.metrics.observe_failure()
            return self._failed_response(
                started, index, f"shard {index} failed: {exc!r}"
            )
        return self._stamp(response, index)

    async def submit_many(
        self, requests: Sequence[ServiceRequest]
    ) -> List[ServiceResponse]:
        """Scatter a multi-fact batch across shards, gather in submission order.

        The fan-out is concurrent per shard; the merge is deterministic —
        ``responses[i]`` answers ``requests[i]`` regardless of shard
        completion order, so gathered verdicts are byte-identical to the
        unsharded service's for the same coordinates.  A failing request
        occupies its slot with a ``FAILED`` response; it never silently
        drops or fails its neighbours.
        """
        responses: List[Optional[ServiceResponse]] = [None] * len(requests)

        async def issue(position: int, request: ServiceRequest) -> None:
            responses[position] = await self.submit(request)

        await asyncio.gather(
            *(issue(position, request) for position, request in enumerate(requests))
        )
        return [response for response in responses if response is not None]

    # ---------------------------------------------------------------- ingestion

    async def apply_mutations(self, mutations: Sequence[Mutation]) -> ShardApplyReport:
        """Route a mutation batch to its owning shards and apply concurrently.

        Each owning shard quiesces *itself* (drains its in-flight reads,
        applies, bumps its epoch) while the rest of the fleet keeps
        serving — the per-shard invalidation contract: only the mutated
        shard's cached verdicts go stale.

        The all-or-nothing contract of :meth:`ShardedStore.apply` extends
        to this path: every sub-batch is validated against its shard
        *before* any shard applies (cross-shard ingests serialise on a
        router lock so the validation stays true through the fan-out), so
        a rejected batch raises without mutating or epoch-bumping any
        shard.  In-flight reads cannot invalidate the pre-validation —
        only ingests mutate, and they all pass through this lock.
        """
        if self._closed:
            raise RuntimeError("service is stopped")
        if self.store is None:
            raise RuntimeError("no ShardedStore attached to this service")
        batch = list(mutations)
        if not batch:
            raise ValueError("mutation batch must not be empty")
        groups = self.store.route(batch)
        indexes = sorted(groups)
        async with self._ingest_lock:
            for index in indexes:
                self.store.shards[index]._validate(groups[index])
            reports = await asyncio.gather(
                *(self.shards[index].apply_mutations(groups[index]) for index in indexes)
            )
        return ShardApplyReport(tuple(zip(indexes, reports)), self.epoch_vector)

    # ---------------------------------------------------------------- internals

    def _stamp(self, response: ServiceResponse, index: int) -> ServiceResponse:
        """Attach the composite epoch vector; the owning shard's component is
        the per-shard epoch the response was actually served at."""
        vector = list(self.epoch_vector)
        vector[index] = response.epoch
        return dataclasses.replace(
            response, epoch=sum(vector), epoch_vector=tuple(vector)
        )

    def _failed_response(
        self, started: float, index: int, error: str
    ) -> ServiceResponse:
        return ServiceResponse(
            outcome=RequestOutcome.FAILED,
            result=None,
            cached=False,
            latency_seconds=time.perf_counter() - started,
            epoch=self.epoch,
            epoch_vector=self.epoch_vector,
            error=error,
        )
