"""Chaos-engineering walkthrough: a flash crowd with a replica kill.

Run with::

    PYTHONPATH=src python examples/chaos_demo.py

The script drives the replicated serving tier through a small chaos
scenario end to end:

1. a **flash-crowd** traffic shape: uniform background load with a burst
   window in which most requests hammer a small hot set of facts;
2. a **fault schedule** that kills one replica right as the burst begins
   and injects transient errors into a second replica mid-burst;
3. the **retry policy**: faulted shard passes retry with jittered
   exponential backoff, and once the budget is spent a warm last-known-
   good verdict is served as a stale, epoch-tagged ``DEGRADED`` response
   instead of ``FAILED``;
4. the **run table** the declarative harness aggregates, with the
   fault-free reference cell to compare against.

The equivalent CLI command::

    python -m repro.benchmark.cli chaos benchmarks/scenarios/smoke.yaml
"""

from __future__ import annotations

from repro.benchmark import BenchmarkRunner, ExperimentConfig
from repro.chaos import ScenarioRunner, load_scenario

#: The whole demo as one declarative scenario (this dict is exactly what
#: the YAML file would contain).
SCENARIO = {
    "name": "flash-crowd-replica-kill",
    "seed": 17,
    "dataset": "factbench",
    "methods": ["dka"],
    "models": ["gemma2:9b"],
    "requests": 240,
    "concurrency": 24,
    "service": {
        "request_timeout_s": 0.3,
        "probe_interval_s": 0.02,
        "time_scale": 0.008,
        "enable_cache": False,
    },
    "retry": {"max_attempts": 3, "base_backoff_s": 0.002, "max_backoff_s": 0.05},
    "matrix": {
        "topology": [{"shards": 2, "replicas": 2}],
        "traffic": [
            {
                "shape": "flash_crowd",
                "hot_fraction": 0.1,
                "burst_start": 0.3,
                "burst_duration": 0.3,
                "burst_intensity": 0.9,
            }
        ],
        "faults": [
            {
                "name": "kill-and-flap",
                "schedule": [
                    # The kill lands right as the burst window opens...
                    {"at_s": 0.02, "target": "shard:0/replica:1", "fault": "kill"},
                    # ...and the surviving replica's sibling shard flaps
                    # with transient errors for a stretch of the burst.
                    {
                        "at_s": 0.05,
                        "target": "shard:1/replica:0",
                        "fault": "error:0.5",
                        "clear_at_s": 0.3,
                    },
                ],
            }
        ],
    },
    "invariants": {"max_failed": 0, "verdict_parity": True},
}


def build_runner() -> BenchmarkRunner:
    return BenchmarkRunner(
        ExperimentConfig(
            scale=0.05,
            max_facts_per_dataset=24,
            world_scale=0.2,
            methods=("dka",),
            datasets=("factbench",),
            models=("gemma2:9b",),
            include_commercial_in_grid=False,
            seed=11,
        )
    )


def main() -> None:
    scenario = load_scenario(SCENARIO)
    print(
        f"=== Chaos scenario {scenario.name!r}: {scenario.cell_count} cells "
        f"(fault-free reference + {len(scenario.fault_cases)} fault case) ===\n"
    )
    table = ScenarioRunner(build_runner(), scenario).run()
    print(table.markdown())

    reference = next(cell for cell in table.cells if cell.reference)
    chaotic = next(cell for cell in table.cells if not cell.reference)
    print("=== What happened under the hood ===")
    print(
        f"fault-free reference: {reference.report.completed} completed, "
        f"p99 {reference.snapshot.p99_latency_s * 1000:.1f} ms"
    )
    print(
        f"kill-and-flap cell:   {chaotic.report.completed} completed, "
        f"{chaotic.report.degraded} degraded, {chaotic.report.failures} FAILED, "
        f"p99 {chaotic.snapshot.p99_latency_s * 1000:.1f} ms"
    )
    print(
        f"resilience work:      {chaotic.snapshot.retries} retries, "
        f"{chaotic.snapshot.failovers} failovers, "
        f"{chaotic.snapshot.budget_exhausted} budget exhaustions, "
        f"{chaotic.snapshot.unhealthy_replicas} replicas marked unhealthy"
    )
    for cell_id, check in table.failed_checks():
        print(f"invariant FAILED in {cell_id}: {check.name} — {check.detail}")
    if table.ok:
        print(
            "\nall invariants passed: the kill and the error flap were absorbed "
            "by failover, retries, and graceful degradation — clients never saw "
            "a FAILED response, and every verdict matched the fault-free run."
        )


if __name__ == "__main__":
    main()
