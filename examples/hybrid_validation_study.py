"""Scenario: evaluate the paper's future-work extensions on FactBench.

The paper's final remarks sketch two extensions that this library implements:

* **ontology-rule screening** — refute triples that violate domain/range or
  functionality constraints before spending any LLM budget, and
* **hybrid retrieval** — fuse structured KG-path evidence (Knowledge Linker
  over a partially incomplete reference KG) with the RAG verdict.

The script compares plain DKA, rule-guarded DKA, RAG, and the hybrid
validator on the same FactBench sample, and uses the statistical tooling
(bootstrap confidence intervals, McNemar's paired test) to say whether the
differences exceed sampling noise.

Run with::

    python examples/hybrid_validation_study.py
"""

from __future__ import annotations

from repro.baselines import KnowledgeLinker, build_reference_graph
from repro.benchmark import BenchmarkRunner, ExperimentConfig
from repro.evaluation import bootstrap_f1_interval, classwise_f1_from_run, mcnemar_test
from repro.validation import (
    DirectKnowledgeAssessment,
    HybridValidator,
    OntologyRuleChecker,
    RuleGuardedValidator,
    ValidationPipeline,
)


def main() -> None:
    config = ExperimentConfig(
        scale=0.02,
        max_facts_per_dataset=50,
        world_scale=0.25,
        documents_per_fact=14,
        serp_results_per_query=25,
        datasets=("factbench",),
    )
    runner = BenchmarkRunner(config)
    dataset = runner.dataset("factbench")
    model = runner.registry.get("gemma2:9b")
    pipeline = ValidationPipeline()

    graph = build_reference_graph(runner.world, exclude_fraction=0.3, seed=1)
    rules = OntologyRuleChecker(runner.world)
    dka = DirectKnowledgeAssessment(model, runner.verbalizer)
    rag = runner.build_strategy("rag", "factbench", model)
    strategies = {
        "dka": dka,
        "rules+dka": RuleGuardedValidator(rules, DirectKnowledgeAssessment(model, runner.verbalizer)),
        "rag": rag,
        "hybrid(klinker+rag)": HybridValidator(KnowledgeLinker(graph), rag),
    }

    runs = {}
    print(f"Validating {len(dataset)} FactBench facts with {model.name}\n")
    print(f"{'strategy':<22} {'F1(T)':>6} {'F1(F)':>6}   95% CI for F1(T)")
    for name, strategy in strategies.items():
        run = pipeline.run(strategy, dataset)
        runs[name] = run
        scores = classwise_f1_from_run(run)
        interval = bootstrap_f1_interval(run, metric="f1_true", num_samples=300, seed=3)
        print(
            f"{name:<22} {scores.f1_true:>6.2f} {scores.f1_false:>6.2f}"
            f"   [{interval.lower:.2f}, {interval.upper:.2f}]"
        )

    print("\nPaired comparisons (McNemar's test, shared facts):")
    pairs = [("rag", "dka"), ("rules+dka", "dka"), ("hybrid(klinker+rag)", "rag")]
    for first, second in pairs:
        result = mcnemar_test(runs[first], runs[second])
        verdict = "significant" if result.significant else "not significant"
        print(
            f"  {first} vs {second}: b={result.b} c={result.c} "
            f"p={result.p_value:.3f} ({verdict} at alpha=0.05)"
        )


if __name__ == "__main__":
    main()
