"""Scenario: step through the four phases of the RAG verification pipeline.

The paper's RQ2 asks whether external evidence improves KG fact-checking.
This script makes the pipeline observable: for one true fact and one
corrupted fact it prints the transformed statement, the generated questions
with their relevance scores, the retrieved (and filtered) documents, the
selected evidence chunks, and finally the model's verdict with and without
the evidence.

Run with::

    python examples/rag_pipeline_walkthrough.py
"""

from __future__ import annotations

from repro.benchmark import BenchmarkRunner, ExperimentConfig
from repro.validation import DirectKnowledgeAssessment


def describe(runner: BenchmarkRunner, fact) -> None:
    model = runner.registry.get("gemma2:9b")
    rag = runner.build_strategy("rag", "factbench", model)
    dka = DirectKnowledgeAssessment(model, runner.verbalizer)

    label = "TRUE" if fact.label else "FALSE"
    print("=" * 78)
    print(f"Fact ({label}): <{fact.triple.subject}, {fact.triple.predicate}, {fact.triple.object}>")

    evidence, upstream_latency = rag.retrieve(fact)
    print(f"\nPhase 1 - transformed statement:\n  {evidence.statement}")

    print("\nPhase 2 - generated questions (score >= threshold are used):")
    for question, score in evidence.questions[:6]:
        marker = "*" if score >= rag.config.relevance_threshold else " "
        print(f"  [{marker}] {score:.2f}  {question}")

    print(f"\nPhase 3 - retrieved documents after KG-source filtering: {len(evidence.documents)}")
    for document in evidence.documents[:4]:
        print(f"  - {document.title}  ({document.source})")

    print(f"\nPhase 4 - evidence chunks selected for the prompt: {len(evidence.chunks)}")
    for chunk in evidence.chunks[:3]:
        print(f"  > {chunk[:110]}{'...' if len(chunk) > 110 else ''}")

    dka_result = dka.validate(fact)
    rag_result = rag.validate(fact)
    print("\nVerdicts:")
    print(f"  internal knowledge only (DKA): {dka_result.verdict.value.upper():<7} "
          f"({dka_result.latency_seconds:.2f}s)")
    print(f"  with retrieved evidence (RAG): {rag_result.verdict.value.upper():<7} "
          f"({rag_result.latency_seconds:.2f}s)")
    print(f"  gold label                   : {label}")
    print()


def main() -> None:
    config = ExperimentConfig(
        scale=0.02,
        max_facts_per_dataset=40,
        world_scale=0.25,
        documents_per_fact=16,
        serp_results_per_query=30,
        datasets=("factbench",),
    )
    runner = BenchmarkRunner(config)
    dataset = runner.dataset("factbench")

    true_fact = next(fact for fact in dataset if fact.label)
    false_fact = next(
        fact for fact in dataset
        if not fact.label and fact.negative_strategy == "object-range"
    )
    describe(runner, true_fact)
    describe(runner, false_fact)


if __name__ == "__main__":
    main()
