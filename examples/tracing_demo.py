"""End-to-end tracing walkthrough: one request's span tree under failover.

Run with::

    PYTHONPATH=src python examples/tracing_demo.py

The script arms the observability layer — seeded :class:`~repro.obs.Tracer`,
unified :class:`~repro.obs.MetricsRegistry`, structured
:class:`~repro.obs.EventLog` — on a 2 shard x 2 replica fleet and walks
one request's journey through it:

1. warm traffic: every hop of a request (router -> attempt -> replica ->
   service -> worker -> store read) opens a child span, and the rendered
   ASCII tree shows where the latency went;
2. a replica dies: ``kill_replica`` evicts one worker, the event log
   records the kill, and subsequent traffic routes around it;
3. a replica dies *mid-flight*: an injected fault makes the balancer's
   first pick raise inside its ``replica.call`` span, so the trace shows
   the FAILED attempt next to the sibling that rescued the request — the
   failover hop, annotated;
4. the unified metrics exposition: per-replica service series labelled
   ``shard``/``replica``, router-level fleet counters, and histogram
   exemplars linking latency buckets back to the traces above;
5. JSONL export: the spans and events, one object per line, for offline
   diffing (seeded VirtualClock runs export byte-identical trees).

The equivalent CLI command::

    python -m repro.benchmark.cli obs --shards 2 --replicas 2 --requests 200
"""

from __future__ import annotations

import asyncio

from repro.benchmark import BenchmarkRunner, ExperimentConfig
from repro.chaos import FaultEvent, FaultInjector, FaultSchedule, FaultSpec
from repro.obs import Observability, slowest_path
from repro.service import (
    RequestOutcome,
    ServiceConfig,
    ServiceRequest,
    ShardedValidationService,
)

NUM_SHARDS = 2
NUM_REPLICAS = 2


def build_runner() -> BenchmarkRunner:
    return BenchmarkRunner(
        ExperimentConfig(
            scale=0.05,
            max_facts_per_dataset=24,
            world_scale=0.2,
            methods=("dka",),
            datasets=("factbench",),
            models=("gemma2:9b",),
            include_commercial_in_grid=False,
            seed=11,
        )
    )


def banner(title: str) -> None:
    print()
    print(f"=== {title} ".ljust(72, "="))
    print()


async def main() -> None:
    runner = build_runner()
    facts = runner.dataset("factbench")
    obs = Observability.for_clock(seed=42, trace_capacity=1024)

    router = ShardedValidationService.from_runner(
        runner,
        NUM_SHARDS,
        ServiceConfig(enable_cache=False),
        replicas=NUM_REPLICAS,
    )
    router.set_observability(obs)

    async with router:
        banner("1. A healthy request's span tree")
        request = ServiceRequest(facts[0], "dka", "gemma2:9b")
        response = await router.submit(request)
        print(f"outcome: {response.outcome.value}, trace: {response.trace_id}")
        print()
        print(obs.tracer.render_tree(response.trace_id))
        print()
        print(f"slowest path: {slowest_path(obs.tracer.spans(response.trace_id))}")

        banner("2. Kill a replica: evicted, logged, routed around")
        await router.kill_replica(0, 1)
        survivors = [
            await router.submit(ServiceRequest(fact, "dka", "gemma2:9b"))
            for fact in facts[1:5]
        ]
        assert all(r.outcome is RequestOutcome.COMPLETED for r in survivors)
        print(f"{len(survivors)} requests completed after the kill")
        print()
        print(obs.events.format_table())

        banner("3. A replica dies mid-flight: the failover hop, annotated")
        # Fault the next balancer pick on shard 1 so the request's first
        # attempt raises *inside* its replica.call span (a pre-kill would
        # leave the rotation before any attempt was traced).
        probe = ServiceRequest(facts[5], "dka", "gemma2:9b")
        shard = router.shard_for(probe)
        rr = router._rr[shard]
        victim = router._replica_order(shard)[0]
        router._rr[shard] = rr
        injector = FaultInjector(
            FaultSchedule(
                [
                    FaultEvent(
                        at_s=0.0,
                        target=f"shard:{shard}/replica:{victim}",
                        fault=FaultSpec.parse("error:1.0"),
                    )
                ]
            ),
            clock=router.clock,
            seed=1,
        )
        router.set_fault_injection(injector)
        injector.start()
        response = await router.submit(probe)
        router.set_fault_injection(None)
        print(
            f"outcome: {response.outcome.value} — rescued by the sibling "
            f"replica after shard:{shard}/replica:{victim} faulted:"
        )
        print()
        print(obs.tracer.render_tree(response.trace_id))
        spans = obs.tracer.spans(response.trace_id)
        attempts = [span for span in spans if span.name == "replica.call"]
        print()
        print(
            f"replica.call spans: "
            + ", ".join(f"{span.target} {span.status}" for span in attempts)
        )
        print(f"failovers logged: {obs.events.counts().get('failover', 0)}")

        banner("4. The unified metrics exposition")
        exposition = router.metrics.exposition()
        interesting = (
            "service_requests_total",
            "router_failovers_total",
            "service_request_latency_seconds_bucket",
        )
        shown = 0
        for line in exposition.splitlines():
            if line.startswith(interesting) or line.startswith("# TYPE"):
                if shown >= 24 and not line.startswith("# TYPE"):
                    continue
                print(line)
                shown += 1
        print(f"... ({len(exposition.splitlines())} lines total)")

        banner("5. JSONL export")
        span_count = obs.tracer.export_jsonl("/tmp/tracing_demo_spans.jsonl")
        event_count = obs.events.export_jsonl("/tmp/tracing_demo_events.jsonl")
        print(f"{span_count} spans -> /tmp/tracing_demo_spans.jsonl")
        print(f"{event_count} events -> /tmp/tracing_demo_events.jsonl")
        print(
            f"(head sampling kept every trace at sample_rate=1.0; "
            f"{obs.tracer.sampled_out} sampled away)"
        )


if __name__ == "__main__":
    asyncio.run(main())
