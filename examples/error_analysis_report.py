"""Scenario: qualitative error analysis of a validation run (paper section 7).

The script validates a YAGO-style and a FactBench-style dataset with the four
open-source models, collects every incorrect prediction, asks the model to
explain its own mistake, clusters the explanations into the paper's E1–E6
taxonomy, and prints the per-dataset breakdown together with the prediction
overlap (UpSet) summary.

Run with::

    python examples/error_analysis_report.py
"""

from __future__ import annotations

from repro.benchmark import BenchmarkRunner, ExperimentConfig
from repro.evaluation import ErrorAnalyzer, format_error_table, format_upset, upset_intersections


def main() -> None:
    config = ExperimentConfig(
        scale=0.03,
        max_facts_per_dataset=40,
        world_scale=0.25,
        documents_per_fact=12,
        serp_results_per_query=20,
        datasets=("factbench", "yago"),
    )
    runner = BenchmarkRunner(config)
    analyzer = ErrorAnalyzer()
    method = "dka"

    error_counts = {}
    for dataset_name in runner.config.datasets:
        dataset = runner.dataset(dataset_name)
        runs = runner.runs_for(method, dataset_name)
        models = {name: runner.registry.get(name) for name in runner.config.models}
        analysis = analyzer.analyze_runs(runs, dataset, models)
        error_counts[dataset_name] = analysis.counts_by_model()

        print(f"=== {dataset_name}: example error explanations ===")
        for record in analysis.records[:4]:
            print(f"[{record.category}] ({record.model}) {record.explanation}")
        ratios = analysis.unique_ratios()
        print("unique-error ratios: "
              + " ".join(f"{key}={value:.2f}" for key, value in ratios.items()))
        print()

    print(format_error_table(error_counts,
                             title=f"Error clustering by dataset and model ({method})"))
    print()

    print("=== Overlap of correct predictions across models (Figure 4 style) ===")
    correct_by_model = {name: [] for name in runner.config.models}
    for dataset_name in runner.config.datasets:
        for name in runner.config.models:
            correct_by_model[name].extend(
                runner.run(method, dataset_name, name).correct_fact_ids()
            )
    print(format_upset(upset_intersections(correct_by_model)))


if __name__ == "__main__":
    main()
