"""Scenario: audit the accuracy of a knowledge graph before deployment.

This mirrors the paper's motivating use case — a downstream application
(search, recommendation, conversational agent) depends on a KG whose facts
must be verified.  The script:

1. builds a DBpedia-style dataset (85% correct facts, long predicate tail),
2. runs the multi-model consensus validator over it,
3. estimates the KG's accuracy from the verdicts and compares it against the
   gold accuracy, and
4. lists the facts flagged as most likely wrong, so a human auditor could
   start from them.

Run with::

    python examples/kg_accuracy_audit.py
"""

from __future__ import annotations

from repro.benchmark import BenchmarkRunner, ExperimentConfig
from repro.evaluation import classwise_f1
from repro.validation import Verdict


def main() -> None:
    config = ExperimentConfig(
        scale=0.01,
        max_facts_per_dataset=60,
        world_scale=0.25,
        documents_per_fact=14,
        serp_results_per_query=25,
        datasets=("dbpedia",),
    )
    runner = BenchmarkRunner(config)
    dataset = runner.dataset("dbpedia")
    print(f"Auditing {len(dataset)} DBpedia-style facts "
          f"({dataset.num_predicates()} distinct predicate labels)\n")

    # Majority vote of the four open-source models, GIV-F prompting,
    # commercial arbitration for ties.
    consensus = runner.consensus("giv-f", "dbpedia", judge="commercial")
    predictions = consensus.predictions()
    gold = consensus.gold()

    answered = {fact_id: value for fact_id, value in predictions.items() if value is not None}
    estimated_accuracy = sum(1 for value in answered.values() if value) / max(1, len(answered))
    print(f"Gold accuracy of the sample      : {dataset.gold_accuracy():.2f}")
    print(f"Consensus-estimated accuracy     : {estimated_accuracy:.2f}")
    print(f"Tie rate before arbitration      : {consensus.tie_rate():.2%}")

    scores = classwise_f1(predictions, gold)
    print(f"Validator quality on this sample : F1(T)={scores.f1_true:.2f} "
          f"F1(F)={scores.f1_false:.2f}\n")

    flagged = [
        outcome for outcome in consensus.outcomes
        if outcome.verdict is Verdict.FALSE
    ]
    print(f"=== {len(flagged)} facts flagged as likely incorrect (audit queue) ===")
    for outcome in flagged[:10]:
        fact = dataset.get(outcome.fact_id)
        votes = sum(1 for vote in outcome.votes.values() if vote is False)
        status = "actual error" if not fact.label else "false alarm"
        print(
            f"- {fact.subject_name} --{fact.predicate_name}--> {fact.object_name}"
            f"  ({votes}/4 models voted false; {status})"
        )


if __name__ == "__main__":
    main()
