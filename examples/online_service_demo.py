"""Online serving walkthrough: submit facts, watch batching, caching, shedding.

Run with::

    PYTHONPATH=src python examples/online_service_demo.py

The script builds a small substrate, starts the asyncio validation service
in-process, and walks through the serving features one at a time:

1. single-fact requests returning full ``ValidationResult``s;
2. micro-batching under concurrent submissions;
3. verdict-cache hits on repeat traffic;
4. admission control shedding overload with explicit ``REJECTED`` outcomes;
5. a closed-loop load-generator run with the latency/throughput report;
6. the same service behind the TCP JSON-lines front-end.

The equivalent CLI commands::

    python -m repro.benchmark.cli serve --port 8765
    python -m repro.benchmark.cli loadgen --requests 500 --concurrency 32
"""

from __future__ import annotations

import asyncio
import json

from repro.benchmark import BenchmarkRunner, ExperimentConfig
from repro.service import (
    LoadGenerator,
    ServiceConfig,
    ServiceRequest,
    TCPValidationFrontend,
    ValidationService,
    build_workload,
)


def build_runner() -> BenchmarkRunner:
    return BenchmarkRunner(
        ExperimentConfig(
            scale=0.03,
            max_facts_per_dataset=20,
            world_scale=0.2,
            methods=("dka", "giv-z"),
            datasets=("factbench",),
            models=("gemma2:9b", "qwen2.5:7b"),
            include_commercial_in_grid=False,
        )
    )


async def single_requests(runner: BenchmarkRunner) -> None:
    print("=== 1. Single-fact requests ===")
    dataset = runner.dataset("factbench")
    async with ValidationService.from_runner(runner) as service:
        for fact in dataset.facts()[:3]:
            response = await service.submit(ServiceRequest(fact, "dka", "gemma2:9b"))
            result = response.result
            print(
                f"  {fact.subject_name} --{fact.predicate_name}--> {fact.object_name}: "
                f"verdict={result.verdict.value} gold={fact.label} "
                f"({response.latency_seconds * 1000:.2f} ms in service, "
                f"{result.total_tokens} tokens)"
            )


async def micro_batching(runner: BenchmarkRunner) -> None:
    print("\n=== 2. Micro-batching under concurrency ===")
    dataset = runner.dataset("factbench")
    config = ServiceConfig(max_batch_size=8, enable_cache=False)
    async with ValidationService.from_runner(runner, config) as service:
        responses = await asyncio.gather(
            *(service.submit(ServiceRequest(fact, "dka", "gemma2:9b"))
              for fact in dataset.facts()[:8])
        )
        print(f"  8 concurrent submissions -> batch sizes "
              f"{[response.batch_size for response in responses]}")
        print(f"  batches dispatched: {service.metrics.snapshot().batches}")


async def verdict_cache(runner: BenchmarkRunner) -> None:
    print("\n=== 3. Verdict cache ===")
    fact = runner.dataset("factbench")[0]
    async with ValidationService.from_runner(runner) as service:
        first = await service.submit(ServiceRequest(fact, "dka", "gemma2:9b"))
        second = await service.submit(ServiceRequest(fact, "dka", "gemma2:9b"))
        print(f"  first:  cached={first.cached}  {first.latency_seconds * 1000:.3f} ms")
        print(f"  second: cached={second.cached}   {second.latency_seconds * 1000:.3f} ms "
              f"(identical result: {second.result == first.result})")
        print(f"  cache stats: {service.cache.stats()}")


async def admission_control(runner: BenchmarkRunner) -> None:
    print("\n=== 4. Admission control ===")
    dataset = runner.dataset("factbench")
    config = ServiceConfig(max_batch_size=1, queue_depth=3, time_scale=0.01,
                           enable_cache=False)
    async with ValidationService.from_runner(runner, config) as service:
        responses = await asyncio.gather(
            *(service.submit(ServiceRequest(fact, "dka", "gemma2:9b"))
              for fact in dataset.facts()[:12])
        )
        shed = sum(1 for response in responses if response.rejected)
        print(f"  12 bursty requests against queue_depth=3 -> "
              f"{12 - shed} completed, {shed} shed with outcome=REJECTED")


def closed_loop(runner: BenchmarkRunner) -> None:
    print("\n=== 5. Closed-loop load generator ===")
    workload = build_workload(
        [runner.dataset("factbench")],
        methods=("dka", "giv-z"),
        models=("gemma2:9b", "qwen2.5:7b"),
        total_requests=300,
        seed=5,
        method_weights={"dka": 3.0, "giv-z": 1.0},
    )
    service = ValidationService.from_runner(
        runner, ServiceConfig(max_batch_size=16, time_scale=0.002)
    )
    report = LoadGenerator(service, workload, concurrency=24).run_sync()
    print("  " + report.format_table().replace("\n", "\n  "))


async def tcp_frontend(runner: BenchmarkRunner) -> None:
    print("\n=== 6. TCP JSON-lines front-end ===")
    dataset = runner.dataset("factbench")
    async with ValidationService.from_runner(runner) as service:
        async with TCPValidationFrontend(service, {"factbench": dataset}) as frontend:
            reader, writer = await asyncio.open_connection("127.0.0.1", frontend.port)
            request = {
                "dataset": "factbench",
                "fact_id": dataset[0].fact_id,
                "method": "dka",
                "model": "gemma2:9b",
                "id": "demo-1",
            }
            writer.write(json.dumps(request).encode() + b"\n")
            await writer.drain()
            print(f"  -> {json.dumps(request)}")
            print(f"  <- {(await reader.readline()).decode().strip()}")
            writer.write(b'{"cmd": "metrics"}\n')
            await writer.drain()
            print(f"  <- {(await reader.readline()).decode().strip()}")
            writer.close()
            await writer.wait_closed()


def main() -> None:
    runner = build_runner()
    asyncio.run(single_requests(runner))
    asyncio.run(micro_batching(runner))
    asyncio.run(verdict_cache(runner))
    asyncio.run(admission_control(runner))
    closed_loop(runner)
    asyncio.run(tcp_frontend(runner))


if __name__ == "__main__":
    main()
