"""Streaming ingestion walkthrough: a knowledge store that learns while serving.

Run with::

    PYTHONPATH=src python examples/streaming_ingest_demo.py

The script builds a small substrate, wraps it in a
:class:`~repro.store.VersionedKnowledgeStore`, and walks the versioned-store
features end to end:

1. epochs and the append-only mutation log;
2. incremental index maintenance (BM25 postings patched in place,
   verified byte-identical to a from-scratch rebuild);
3. point-in-time snapshots for reproducible offline runs;
4. the online service ingesting evidence mid-traffic — epoch-keyed verdict
   caching re-judges facts against the new knowledge automatically;
5. JSONL persistence: save, replay, compact.

The equivalent CLI commands::

    python -m repro.benchmark.cli ingest --store store.jsonl --mutations ops.jsonl
    python -m repro.benchmark.cli compact --store store.jsonl
"""

from __future__ import annotations

import asyncio
import os
import tempfile

from repro.benchmark import BenchmarkRunner, ExperimentConfig
from repro.retrieval import SearchEngine
from repro.retrieval.corpus import Document
from repro.service import ServiceConfig, ServiceRequest, ValidationService
from repro.store import Mutation, VersionedKnowledgeStore


def build_runner() -> BenchmarkRunner:
    return BenchmarkRunner(
        ExperimentConfig(
            scale=0.03,
            max_facts_per_dataset=10,
            world_scale=0.15,
            methods=("dka", "rag"),
            datasets=("factbench",),
            models=("gemma2:9b",),
            include_commercial_in_grid=False,
            seed=11,
        )
    )


def news_document(index: int, fact) -> Document:
    return Document(
        doc_id=f"breaking-{index}",
        url=f"https://newswire.example/{index}",
        title=f"{fact.subject_name} update",
        text=(
            f"Breaking: {fact.subject_name} {fact.predicate_name} "
            f"{fact.object_name}. Multiple sources confirm the connection "
            f"between {fact.subject_name} and {fact.object_name}."
        ),
        source="newswire.example",
        fact_id=fact.fact_id,
        kind="news",
    )


def epochs_and_the_log(store: VersionedKnowledgeStore) -> None:
    print("=== 1. Epochs and the mutation log ===")
    print(
        f"adopted substrates at epoch {store.epoch}: {len(store.graph)} triples, "
        f"{len(store.corpus)} documents, {len(store.log)} log records"
    )
    report = store.apply([
        Mutation.add_triple("Grace Hopper", "worksFor", "Eckert-Mauchly"),
        Mutation.add_triple("Eckert-Mauchly", "locatedIn", "Philadelphia"),
    ])
    print(
        f"applied a 2-op batch -> epoch {report.epoch} "
        f"(+{report.triples_added} triples, {report.seconds * 1000:.1f} ms)\n"
    )


def incremental_maintenance(store: VersionedKnowledgeStore, dataset) -> None:
    print("=== 2. Incremental index maintenance ===")
    before = len(store.search_engine)
    report = store.apply(
        [Mutation.add_document(news_document(i, fact))
         for i, fact in enumerate(dataset.facts()[:4])]
    )
    print(
        f"ingested {report.documents_added} documents via the "
        f"'{report.index_strategy}' path: index grew {before} -> "
        f"{len(store.search_engine)} docs in {report.seconds * 1000:.1f} ms"
    )
    scratch = SearchEngine(store.corpus)
    identical = scratch.state_digest() == store.search_engine.state_digest()
    print(f"patched index byte-identical to a from-scratch rebuild: {identical}\n")


def point_in_time_snapshots(store: VersionedKnowledgeStore) -> None:
    print("=== 3. Point-in-time snapshots ===")
    current = store.snapshot()
    past = store.snapshot(1)
    print(
        f"snapshot(now)  -> epoch {current.epoch}: {len(current.corpus)} docs, "
        f"{len(current.graph)} triples"
    )
    print(
        f"snapshot(1)    -> epoch {past.epoch}: {len(past.corpus)} docs, "
        f"{len(past.graph)} triples (the pre-ingest world, reproducibly)\n"
    )


async def serve_across_an_ingest(runner: BenchmarkRunner, store) -> None:
    print("=== 4. Online service across a mid-traffic ingest ===")
    dataset = runner.dataset("factbench")
    fact = dataset.facts()[4]
    service = ValidationService.from_runner(runner, ServiceConfig(), store=store)
    async with service:
        first = await service.submit(ServiceRequest(fact, "rag", "gemma2:9b"))
        repeat = await service.submit(ServiceRequest(fact, "rag", "gemma2:9b"))
        print(
            f"epoch {first.epoch}: verdict={first.result.verdict.value} "
            f"({first.result.num_evidence_chunks} evidence chunks), "
            f"repeat cached={repeat.cached}"
        )
        report = await service.apply_mutations([
            Mutation.add_document(news_document(99, fact)),
            Mutation.add_triple(fact.subject_name, fact.base_predicate(), fact.object_name),
        ])
        print(f"ingested {report.total_ops} ops mid-traffic -> epoch {report.epoch}")
        after = await service.submit(ServiceRequest(fact, "rag", "gemma2:9b"))
        print(
            f"epoch {after.epoch}: cached={after.cached} (epoch-keyed cache "
            f"invalidated), verdict={after.result.verdict.value} "
            f"({after.result.num_evidence_chunks} evidence chunks)"
        )
        snapshot = service.metrics.snapshot()
        print(
            f"metrics: {snapshot.completed} completed, {snapshot.ingests} "
            f"ingests ({snapshot.ingested_ops} ops)\n"
        )


def persistence_and_compaction(store: VersionedKnowledgeStore) -> None:
    print("=== 5. Persistence: save, replay, compact ===")
    path = os.path.join(tempfile.gettempdir(), "streaming_ingest_demo_store.jsonl")
    store.save(path)
    loaded = VersionedKnowledgeStore.load(path)
    print(
        f"saved {len(store.log)} records; replayed store matches byte-for-byte: "
        f"{loaded.state_digest() == store.state_digest()}"
    )
    dropped = store.compact()
    store.save(path)
    print(
        f"compacted: dropped {dropped} records, epoch {store.epoch} preserved, "
        f"snapshot floor now {store.log.floor_epoch}"
    )
    loaded = VersionedKnowledgeStore.load(path)
    print(
        f"compacted log still replays identically: "
        f"{loaded.state_digest() == store.state_digest()}"
    )
    os.unlink(path)


def main() -> None:
    runner = build_runner()
    dataset = runner.dataset("factbench")
    store = runner.versioned_store("factbench")
    epochs_and_the_log(store)
    incremental_maintenance(store, dataset)
    point_in_time_snapshots(store)
    asyncio.run(serve_across_an_ingest(runner, store))
    persistence_and_compaction(store)


if __name__ == "__main__":
    main()
