"""Quickstart: validate a handful of KG facts with every FactCheck strategy.

Run with::

    python examples/quickstart.py

The script builds a small synthetic world, samples a FactBench-style
dataset, and validates a few facts with DKA, GIV-F, and RAG using the
simulated Gemma2 model, printing the verdict, the gold label, and the cost
of each call.
"""

from __future__ import annotations

from repro.benchmark import BenchmarkRunner, ExperimentConfig
from repro.evaluation import classwise_f1_from_run
from repro.validation import Verdict


def main() -> None:
    config = ExperimentConfig(
        scale=0.02,
        max_facts_per_dataset=20,
        world_scale=0.2,
        documents_per_fact=12,
        serp_results_per_query=20,
        datasets=("factbench",),
    )
    runner = BenchmarkRunner(config)
    dataset = runner.dataset("factbench")
    model = runner.registry.get("gemma2:9b")

    print(f"Dataset: {dataset.name} with {len(dataset)} facts "
          f"(gold accuracy {dataset.gold_accuracy():.2f})\n")

    print("=== Validating five facts with each strategy ===")
    for method in ("dka", "giv-f", "rag"):
        strategy = runner.build_strategy(method, "factbench", model)
        print(f"\n--- {method.upper()} ({model.name}) ---")
        for fact in dataset.facts()[:5]:
            result = strategy.validate(fact)
            verdict = result.verdict.value.upper()
            marker = "?" if result.verdict is Verdict.INVALID else (
                "OK " if result.is_correct else "MISS"
            )
            print(
                f"[{marker}] {fact.subject_name} --{fact.predicate_name}--> {fact.object_name}"
                f"  verdict={verdict:<7} gold={'TRUE' if fact.label else 'FALSE':<5}"
                f"  {result.latency_seconds:.2f}s / {result.total_tokens} tokens"
            )

    print("\n=== Full-dataset class-wise F1 per method ===")
    for method in ("dka", "giv-z", "giv-f", "rag"):
        run = runner.run(method, "factbench", "gemma2:9b")
        scores = classwise_f1_from_run(run)
        print(f"{method:<6} F1(T)={scores.f1_true:.2f}  F1(F)={scores.f1_false:.2f}")


if __name__ == "__main__":
    main()
