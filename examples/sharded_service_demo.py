"""Sharded serving-tier walkthrough: scatter-gather routing over N shards.

Run with::

    PYTHONPATH=src python examples/sharded_service_demo.py

The script partitions the knowledge substrate across four
:class:`~repro.store.VersionedKnowledgeStore` shards by consistent hashing
on the subject entity and walks the sharded tier end to end:

1. consistent-hash partitioning: every fact has one owning shard,
   growing the ring remaps only a fraction of the key space;
2. scatter-gather serving: a multi-fact batch fans out to the owning
   shards and merges deterministically — verdicts byte-identical to the
   unsharded service;
3. per-shard ingest: a mutation batch routed to one shard bumps only
   that shard's epoch, so only its cached verdicts go stale while every
   other shard keeps serving from cache;
4. fault isolation: a shard that raises surfaces an explicit ``FAILED``
   outcome without touching its neighbours;
5. the aggregate metrics roll-up (fleet percentiles over the combined
   latency windows, per-shard breakdown).

The equivalent CLI commands::

    python -m repro.benchmark.cli serve --shards 4 --methods dka
    python -m repro.benchmark.cli loadgen --shards 4 --requests 500
"""

from __future__ import annotations

import asyncio
from collections import Counter

from repro.benchmark import BenchmarkRunner, ExperimentConfig
from repro.service import (
    RequestOutcome,
    ServiceConfig,
    ServiceRequest,
    ShardedValidationService,
    ValidationService,
)
from repro.store import HashRing, Mutation

NUM_SHARDS = 4


def build_runner() -> BenchmarkRunner:
    return BenchmarkRunner(
        ExperimentConfig(
            scale=0.05,
            max_facts_per_dataset=24,
            world_scale=0.2,
            methods=("dka",),
            datasets=("factbench",),
            models=("gemma2:9b",),
            include_commercial_in_grid=False,
            seed=11,
        )
    )


def consistent_hashing(runner: BenchmarkRunner) -> None:
    print("=== 1. Consistent-hash partitioning ===")
    store = runner.sharded_store("factbench", NUM_SHARDS)
    print(
        f"partitioned {store.total_triples} triples and {store.total_documents} "
        f"documents across {store.num_shards} shards; epoch vector "
        f"{list(store.epoch_vector)}"
    )
    dataset = runner.dataset("factbench")
    spread = Counter(store.shard_for(fact.triple.subject) for fact in dataset)
    print(f"fact ownership: {dict(sorted(spread.items()))}")
    keys = [fact.triple.subject for fact in dataset]
    grown = HashRing(NUM_SHARDS + 1)
    moved = sum(1 for key in keys if store.shard_for(key) != grown.shard_for(key))
    print(
        f"growing the ring {NUM_SHARDS} -> {NUM_SHARDS + 1} remaps "
        f"{moved}/{len(keys)} facts (consistent hashing, not modulo)\n"
    )


async def scatter_gather(runner: BenchmarkRunner) -> None:
    print("=== 2. Scatter-gather serving ===")
    dataset = runner.dataset("factbench")
    requests = [ServiceRequest(fact, "dka", "gemma2:9b") for fact in dataset]
    config = ServiceConfig(enable_cache=False, max_batch_size=8)
    router = ShardedValidationService.from_runner(runner, NUM_SHARDS, config)
    async with router:
        gathered = await router.submit_many(requests)
    plain = ValidationService.from_runner(runner, config)
    async with plain:
        flat = await asyncio.gather(*(plain.submit(req) for req in requests))
    identical = all(a.result == b.result for a, b in zip(gathered, flat))
    per_shard = [snapshot.completed for snapshot in router.metrics.per_shard()]
    print(
        f"scattered {len(requests)} facts across shards {per_shard}, "
        f"gathered in submission order"
    )
    print(f"verdicts byte-identical to the unsharded service: {identical}\n")


async def per_shard_ingest(runner: BenchmarkRunner) -> None:
    print("=== 3. Per-shard ingest and cache invalidation ===")
    dataset = runner.dataset("factbench")
    store = runner.sharded_store("factbench", NUM_SHARDS)
    router = ShardedValidationService.from_runner(
        runner, NUM_SHARDS, ServiceConfig(), store=store
    )
    requests = [ServiceRequest(fact, "dka", "gemma2:9b") for fact in dataset]
    target = dataset[0]
    owner = store.shard_for(target.triple.subject)
    async with router:
        await router.submit_many(requests)          # cold: fill the caches
        warm = await router.submit_many(requests)   # warm: all cached
        report = await router.apply_mutations(
            [Mutation.add_triple(target.triple.subject, "updatedBy", "Newswire_Feed")]
        )
        after = await router.submit_many(requests)
    print(f"warm pass: {sum(r.cached for r in warm)}/{len(warm)} served from cache")
    print(
        f"ingest routed to shard {owner} only (shards touched: "
        f"{list(report.shards_touched)}); epoch vector {list(report.epoch_vector)}"
    )
    stale = [i for i, r in enumerate(after) if not r.cached]
    still_hot = sum(1 for r in after if r.cached)
    print(
        f"after the ingest: {len(stale)} facts re-judged (all owned by shard "
        f"{owner}), {still_hot} still cache-hot on the other shards\n"
    )


async def fault_isolation(runner: BenchmarkRunner) -> None:
    print("=== 4. Fault isolation ===")
    dataset = runner.dataset("factbench")
    requests = [ServiceRequest(fact, "dka", "gemma2:9b") for fact in dataset]
    config = ServiceConfig(enable_cache=False)

    def provider_for(index: int):
        if index == 0:
            def poisoned(method, dataset_name, model):
                raise ConnectionError("shard backend unreachable")
            return poisoned
        def healthy(method, dataset_name, model):
            return runner.build_strategy(method, dataset_name, runner.registry.get(model))
        return healthy

    shards = [ValidationService(provider_for(i), config) for i in range(NUM_SHARDS)]
    router = ShardedValidationService(shards)
    async with router:
        responses = await router.submit_many(requests)
    outcomes = Counter(response.outcome.value for response in responses)
    print(f"shard 0 poisoned; outcomes: {dict(outcomes)}")
    failed = next(r for r in responses if r.outcome is RequestOutcome.FAILED)
    print(f"a failed slot carries its reason: {failed.error!r}")
    print("healthy shards answered normally — no hang, no silent drop\n")


async def metrics_rollup(runner: BenchmarkRunner) -> None:
    print("=== 5. Aggregate metrics roll-up ===")
    dataset = runner.dataset("factbench")
    router = ShardedValidationService.from_runner(
        runner, NUM_SHARDS, ServiceConfig(enable_cache=False, time_scale=0.002)
    )
    requests = [ServiceRequest(fact, "dka", "gemma2:9b") for fact in dataset] * 4
    async with router:
        await router.submit_many(requests)
    print(router.metrics.snapshot().format_table("Fleet metrics"))
    print()
    print(router.metrics.format_shard_table())


def main() -> None:
    runner = build_runner()
    consistent_hashing(runner)
    asyncio.run(scatter_gather(runner))
    asyncio.run(per_shard_ingest(runner))
    asyncio.run(fault_isolation(runner))
    asyncio.run(metrics_rollup(runner))


if __name__ == "__main__":
    main()
