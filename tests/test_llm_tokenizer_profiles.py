"""Tests for the tokenizer, model profiles, registry, and telemetry."""

import pytest

from repro.llm import (
    ALL_PROFILES,
    OPEN_SOURCE_MODELS,
    SimpleTokenizer,
    TelemetryCollector,
    UPGRADE_VARIANTS,
    count_tokens,
    create_model,
    create_models,
    default_open_source_names,
    get_profile,
    upgrade_of,
)
from repro.llm.base import LLMResponse


class TestTokenizer:
    def test_empty_text(self):
        assert SimpleTokenizer().count("") == 0

    def test_word_and_punctuation(self):
        assert SimpleTokenizer().count("Hello, world!") == 4

    def test_long_words_split_into_subwords(self):
        tokenizer = SimpleTokenizer()
        assert tokenizer.count("internationalization") > 1

    def test_count_monotone_in_text_length(self):
        short = count_tokens("The capital of Valdoria is Brimworth.")
        long = count_tokens("The capital of Valdoria is Brimworth. " * 10)
        assert long > short

    def test_roughly_more_tokens_than_words(self):
        text = "Verification of knowledge graph statements requires careful contextual analysis."
        assert count_tokens(text) >= len(text.split())


class TestProfiles:
    def test_four_open_source_models(self):
        assert set(OPEN_SOURCE_MODELS) == {
            "gemma2:9b",
            "qwen2.5:7b",
            "llama3.1:8b",
            "mistral:7b",
        }

    def test_upgrade_variants_exist_for_each_family(self):
        families = {profile.family for profile in OPEN_SOURCE_MODELS.values()}
        upgrade_families = {profile.family for profile in UPGRADE_VARIANTS.values()}
        assert families == upgrade_families

    def test_upgrades_are_larger_and_slower(self):
        for base_name in OPEN_SOURCE_MODELS:
            base = get_profile(base_name)
            upgraded = upgrade_of(base_name)
            assert upgraded.parameters_b > base.parameters_b
            assert upgraded.knowledge_coverage >= base.knowledge_coverage
            assert upgraded.base_latency_s > base.base_latency_s

    def test_commercial_profile_is_sceptical(self):
        gpt = get_profile("gpt-4o-mini")
        assert gpt.commercial
        assert gpt.positive_bias < 0.5
        assert gpt.unsupported_true_penalty > 0.2

    def test_probability_fields_in_range(self):
        for profile in ALL_PROFILES.values():
            for value in (
                profile.knowledge_coverage,
                profile.knowledge_reliability,
                profile.positive_bias,
                profile.evidence_utilization,
                profile.evidence_positive_trust,
                profile.format_compliance,
                profile.unsupported_true_penalty,
            ):
                assert 0.0 <= value <= 1.0

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            get_profile("gpt-17")

    def test_mistral_fastest_llama_slowest(self):
        assert (
            OPEN_SOURCE_MODELS["mistral:7b"].prompt_token_rate_s
            < OPEN_SOURCE_MODELS["llama3.1:8b"].prompt_token_rate_s
        )


class TestRegistry:
    def test_default_names(self):
        assert default_open_source_names() == list(OPEN_SOURCE_MODELS)

    def test_create_model_and_models(self, world):
        model = create_model("gemma2:9b", world)
        assert model.name == "gemma2:9b"
        models = create_models(["gemma2:9b", "mistral:7b"], world)
        assert set(models) == {"gemma2:9b", "mistral:7b"}

    def test_registry_caches_instances(self, registry):
        assert registry.get("gemma2:9b") is registry.get("gemma2:9b")

    def test_registry_upgrade_for(self, registry):
        upgraded = registry.upgrade_for("qwen2.5:7b")
        assert upgraded.name == "qwen2.5:14b"

    def test_registry_available_lists_all(self, registry):
        assert set(registry.available()) == set(ALL_PROFILES)


class TestTelemetry:
    def _response(self, model="m", prompt=10, completion=5, latency=0.5):
        return LLMResponse(
            text="x", model=model, prompt_tokens=prompt,
            completion_tokens=completion, latency_seconds=latency,
        )

    def test_record_and_summary(self):
        telemetry = TelemetryCollector()
        telemetry.record(self._response(latency=1.0), task="dka")
        telemetry.record(self._response(latency=3.0), task="dka")
        summary = telemetry.summary(task="dka")
        assert summary.calls == 2
        assert summary.avg_latency_seconds == pytest.approx(2.0)
        assert summary.total_latency_seconds == pytest.approx(4.0)

    def test_filtering_by_model_and_task(self):
        telemetry = TelemetryCollector()
        telemetry.record(self._response(model="a"), task="dka")
        telemetry.record(self._response(model="b"), task="rag")
        assert len(telemetry.records(model="a")) == 1
        assert len(telemetry.records(task="rag")) == 1
        assert len(telemetry.records(model="a", task="rag")) == 0

    def test_by_task_and_by_model_groupings(self):
        telemetry = TelemetryCollector()
        telemetry.record(self._response(model="a"), task="dka")
        telemetry.record(self._response(model="a"), task="rag")
        telemetry.record(self._response(model="b"), task="rag")
        assert set(telemetry.by_task()) == {"dka", "rag"}
        assert telemetry.by_model()["a"].calls == 2

    def test_empty_summary(self):
        assert TelemetryCollector().summary().calls == 0

    def test_clear(self):
        telemetry = TelemetryCollector()
        telemetry.record(self._response())
        telemetry.clear()
        assert len(telemetry) == 0

    def test_total_tokens(self):
        record = TelemetryCollector().record(self._response(prompt=7, completion=3))
        assert record.total_tokens == 10
