"""Tests for chunking, the BM25 search engine, the synthetic web, and the mock API."""

import pytest

from repro.retrieval import (
    Corpus,
    Document,
    MockSearchAPI,
    SearchEngine,
    SlidingWindowChunker,
    WebCorpusConfig,
    WebCorpusGenerator,
    split_sentences,
)


class TestSentenceSplitting:
    def test_split_basic(self):
        sentences = split_sentences("One. Two! Three?")
        assert sentences == ["One.", "Two!", "Three?"]

    def test_split_empty(self):
        assert split_sentences("   ") == []


class TestChunker:
    def test_short_text_single_chunk(self):
        chunker = SlidingWindowChunker(window_size=3, stride=2)
        chunks = chunker.chunk_text("Only one sentence here.", doc_id="d")
        assert len(chunks) == 1
        assert chunks[0].doc_id == "d"

    def test_empty_text_no_chunks(self):
        assert SlidingWindowChunker().chunk_text("") == []

    def test_windows_overlap(self):
        text = "S1 alpha. S2 beta. S3 gamma. S4 delta. S5 epsilon."
        chunks = SlidingWindowChunker(window_size=3, stride=2).chunk_text(text)
        assert len(chunks) >= 2
        assert "S3 gamma." in chunks[0].text and "S3 gamma." in chunks[1].text

    def test_all_sentences_covered(self):
        text = " ".join(f"Sentence number {i}." for i in range(10))
        chunks = SlidingWindowChunker(window_size=3, stride=2).chunk_text(text)
        combined = " ".join(chunk.text for chunk in chunks)
        for i in range(10):
            assert f"Sentence number {i}." in combined

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SlidingWindowChunker(window_size=0)
        with pytest.raises(ValueError):
            SlidingWindowChunker(stride=0)

    def test_chunk_documents(self):
        documents = [
            Document("d1", "u1", "t", "A one. A two. A three. A four.", "s"),
            Document("d2", "u2", "t", "", "s"),
        ]
        chunks = SlidingWindowChunker().chunk_documents(documents)
        assert all(chunk.doc_id == "d1" for chunk in chunks)


class TestSearchEngine:
    @pytest.fixture(scope="class")
    def engine(self):
        corpus = Corpus(
            [
                Document("d1", "u1", "Aldric Fenwick profile",
                         "Aldric Fenwick was born in Brimworth. He studied at Oakmere College.",
                         "encyclia.org"),
                Document("d2", "u2", "Brimworth overview",
                         "Brimworth is located in Valdoria. The town has a famous harbor.",
                         "openalmanac.org"),
                Document("d3", "u3", "Unrelated finance news",
                         "Quarterly results exceeded expectations across all divisions.",
                         "dailyherald.example"),
                Document("d4", "u4", "Empty page", "", "factfile.info"),
            ]
        )
        return SearchEngine(corpus)

    def test_entity_query_finds_profile_first(self, engine):
        results = engine.search("Where was Aldric Fenwick born?")
        assert results
        assert results[0].document.doc_id == "d1"

    def test_num_results_respected(self, engine):
        assert len(engine.search("Brimworth", num_results=1)) == 1

    def test_empty_query(self, engine):
        assert engine.search("") == []

    def test_snippet_contains_query_term_context(self, engine):
        results = engine.search("Brimworth harbor")
        assert any("Brimworth" in result.snippet for result in results)

    def test_unmatched_query_returns_nothing_relevant(self, engine):
        results = engine.search("zzzz qqqq xxxx")
        assert results == []

    def test_scores_are_descending(self, engine):
        results = engine.search("Brimworth Valdoria harbor")
        scores = [result.score for result in results]
        assert scores == sorted(scores, reverse=True)


class TestWebCorpusGenerator:
    @pytest.fixture(scope="class")
    def generated(self, world, factbench_small):
        generator = WebCorpusGenerator(world, WebCorpusConfig(documents_per_fact=12, seed=2))
        fact = next(fact for fact in factbench_small if fact.label)
        return fact, generator.documents_for_fact(fact)

    def test_document_mix(self, generated):
        __, documents = generated
        kinds = {doc.kind for doc in documents}
        assert "profile" in kinds
        assert "empty" in kinds or "noise" in kinds

    def test_empty_documents_have_no_text(self, generated):
        __, documents = generated
        for doc in documents:
            if doc.kind == "empty":
                assert doc.is_empty

    def test_kg_origin_documents_on_kg_domains(self, generated):
        __, documents = generated
        for doc in documents:
            if doc.kind == "kg-origin":
                assert doc.source in ("en.wikipedia.org", "dbpedia.org")

    def test_profile_documents_mention_subject(self, generated):
        fact, documents = generated
        profiles = [doc for doc in documents if doc.kind == "profile"]
        assert profiles
        assert all(fact.subject_name in doc.title for doc in profiles)

    def test_corpus_provenance_and_coverage(self, world, factbench_small):
        generator = WebCorpusGenerator(world, WebCorpusConfig(documents_per_fact=10, seed=3))
        corpus = generator.build_corpus(factbench_small.facts()[:6])
        stats = corpus.stats()
        assert stats["num_facts_with_documents"] == 6
        assert 0.6 < stats["text_coverage_rate"] <= 1.0

    def test_deterministic_per_fact(self, world, factbench_small):
        fact = factbench_small[0]
        first = WebCorpusGenerator(world, WebCorpusConfig(seed=4)).documents_for_fact(fact)
        second = WebCorpusGenerator(world, WebCorpusConfig(seed=4)).documents_for_fact(fact)
        assert [d.text for d in first] == [d.text for d in second]


class TestMockSearchAPI:
    def test_search_returns_serp_entries(self, search_api):
        results = search_api.search("profile and background", num=5)
        assert len(results) <= 5
        for rank, entry in enumerate(results, start=1):
            assert entry.rank == rank
            assert entry.url.startswith("https://")

    def test_fetch_content_roundtrip(self, search_api, corpus_small):
        document = next(doc for doc in corpus_small if not doc.is_empty)
        assert search_api.fetch_content(document.url) == document.text
        assert search_api.fetch_document(document.url).doc_id == document.doc_id

    def test_fetch_unknown_url(self, search_api):
        assert search_api.fetch_content("https://unknown.example/page") is None

    def test_query_log_records_parameters(self, search_api):
        search_api.reset_log()
        search_api.search("some query", gl="us", num=3)
        log = search_api.query_log()
        assert log[-1]["q"] == "some query"
        assert log[-1]["num"] == "3"
        search_api.reset_log()
        assert search_api.query_log() == []
