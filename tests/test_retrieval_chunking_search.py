"""Tests for chunking, the BM25 search engine, the synthetic web, and the mock API."""

import pytest

from repro.retrieval import (
    Corpus,
    Document,
    MockSearchAPI,
    SearchEngine,
    SlidingWindowChunker,
    WebCorpusConfig,
    WebCorpusGenerator,
    split_sentences,
)


class TestSentenceSplitting:
    def test_split_basic(self):
        sentences = split_sentences("One. Two! Three?")
        assert sentences == ["One.", "Two!", "Three?"]

    def test_split_empty(self):
        assert split_sentences("   ") == []


class TestChunker:
    def test_short_text_single_chunk(self):
        chunker = SlidingWindowChunker(window_size=3, stride=2)
        chunks = chunker.chunk_text("Only one sentence here.", doc_id="d")
        assert len(chunks) == 1
        assert chunks[0].doc_id == "d"

    def test_empty_text_no_chunks(self):
        assert SlidingWindowChunker().chunk_text("") == []

    def test_windows_overlap(self):
        text = "S1 alpha. S2 beta. S3 gamma. S4 delta. S5 epsilon."
        chunks = SlidingWindowChunker(window_size=3, stride=2).chunk_text(text)
        assert len(chunks) >= 2
        assert "S3 gamma." in chunks[0].text and "S3 gamma." in chunks[1].text

    def test_all_sentences_covered(self):
        text = " ".join(f"Sentence number {i}." for i in range(10))
        chunks = SlidingWindowChunker(window_size=3, stride=2).chunk_text(text)
        combined = " ".join(chunk.text for chunk in chunks)
        for i in range(10):
            assert f"Sentence number {i}." in combined

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SlidingWindowChunker(window_size=0)
        with pytest.raises(ValueError):
            SlidingWindowChunker(stride=0)

    def test_chunk_documents(self):
        documents = [
            Document("d1", "u1", "t", "A one. A two. A three. A four.", "s"),
            Document("d2", "u2", "t", "", "s"),
        ]
        chunks = SlidingWindowChunker().chunk_documents(documents)
        assert all(chunk.doc_id == "d1" for chunk in chunks)


class TestSearchEngine:
    @pytest.fixture(scope="class")
    def engine(self):
        corpus = Corpus(
            [
                Document("d1", "u1", "Aldric Fenwick profile",
                         "Aldric Fenwick was born in Brimworth. He studied at Oakmere College.",
                         "encyclia.org"),
                Document("d2", "u2", "Brimworth overview",
                         "Brimworth is located in Valdoria. The town has a famous harbor.",
                         "openalmanac.org"),
                Document("d3", "u3", "Unrelated finance news",
                         "Quarterly results exceeded expectations across all divisions.",
                         "dailyherald.example"),
                Document("d4", "u4", "Empty page", "", "factfile.info"),
            ]
        )
        return SearchEngine(corpus)

    def test_entity_query_finds_profile_first(self, engine):
        results = engine.search("Where was Aldric Fenwick born?")
        assert results
        assert results[0].document.doc_id == "d1"

    def test_num_results_respected(self, engine):
        assert len(engine.search("Brimworth", num_results=1)) == 1

    def test_empty_query(self, engine):
        assert engine.search("") == []

    def test_snippet_contains_query_term_context(self, engine):
        results = engine.search("Brimworth harbor")
        assert any("Brimworth" in result.snippet for result in results)

    def test_unmatched_query_returns_nothing_relevant(self, engine):
        results = engine.search("zzzz qqqq xxxx")
        assert results == []

    def test_scores_are_descending(self, engine):
        results = engine.search("Brimworth Valdoria harbor")
        scores = [result.score for result in results]
        assert scores == sorted(scores, reverse=True)


def scalar_bm25_reference(corpus, query, num_results=100, k1=1.5, b=0.75, title_weight=2.5):
    """The seed's scalar BM25, kept as the oracle for the vectorised engine.

    Returns ``[(doc_id, score), ...]`` ranked by (-score, insertion index).
    """
    import math
    import re
    from collections import Counter, defaultdict

    word_re = re.compile(r"[a-z0-9]+")
    tokenize = lambda text: word_re.findall(text.lower())

    doc_ids, doc_lengths = [], []
    postings, document_frequency = defaultdict(list), Counter()
    for document in corpus:
        weighted = Counter(tokenize(document.text))
        for token in tokenize(document.title):
            weighted[token] += title_weight
        index = len(doc_ids)
        doc_ids.append(document.doc_id)
        doc_lengths.append(sum(weighted.values()))
        for term, frequency in weighted.items():
            postings[term].append((index, frequency))
            document_frequency[term] += 1
    avg_length = sum(doc_lengths) / len(doc_lengths) if doc_lengths else 0.0

    scores = defaultdict(float)
    for term in tokenize(query):
        n = len(doc_ids)
        df = document_frequency.get(term, 0)
        idf = math.log(1.0 + (n - df + 0.5) / (df + 0.5))
        if idf <= 0.0:
            continue
        for index, tf in postings.get(term, ()):
            length_norm = 1.0 - b + b * (doc_lengths[index] / avg_length if avg_length else 1.0)
            scores[index] += idf * (tf * (k1 + 1.0)) / (tf + k1 * length_norm)
    ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))[:num_results]
    return [(doc_ids[index], score) for index, score in ranked]


class TestSearchEquivalence:
    """The vectorised engine must rank exactly like the scalar reference."""

    def test_matches_scalar_reference_on_seeded_corpus(self, corpus_small):
        engine = SearchEngine(corpus_small)
        queries = [doc.title for doc in list(corpus_small)[:40] if doc.title]
        queries += [
            "profile and background",
            "born in",
            "award ceremony history",
            "completely unindexed zzzz term",
        ]
        compared = 0
        for query in queries:
            expected = scalar_bm25_reference(corpus_small, query, num_results=25)
            actual = engine.search(query, num_results=25)
            assert [r.document.doc_id for r in actual] == [doc_id for doc_id, __ in expected]
            for result, (__, score) in zip(actual, expected):
                assert result.score == pytest.approx(score, abs=1e-9)
            compared += len(expected)
        assert compared > 50

    def test_repeated_query_terms_accumulate(self, corpus_small):
        engine = SearchEngine(corpus_small)
        doc = next(d for d in corpus_small if d.text)
        term = doc.title.split()[0]
        once = engine.search(term, num_results=5)
        twice = engine.search(f"{term} {term}", num_results=5)
        if once and twice:
            assert twice[0].score == pytest.approx(2 * once[0].score, rel=1e-9)


class TestWebCorpusGenerator:
    @pytest.fixture(scope="class")
    def generated(self, world, factbench_small):
        generator = WebCorpusGenerator(world, WebCorpusConfig(documents_per_fact=12, seed=2))
        fact = next(fact for fact in factbench_small if fact.label)
        return fact, generator.documents_for_fact(fact)

    def test_document_mix(self, generated):
        __, documents = generated
        kinds = {doc.kind for doc in documents}
        assert "profile" in kinds
        assert "empty" in kinds or "noise" in kinds

    def test_empty_documents_have_no_text(self, generated):
        __, documents = generated
        for doc in documents:
            if doc.kind == "empty":
                assert doc.is_empty

    def test_kg_origin_documents_on_kg_domains(self, generated):
        __, documents = generated
        for doc in documents:
            if doc.kind == "kg-origin":
                assert doc.source in ("en.wikipedia.org", "dbpedia.org")

    def test_profile_documents_mention_subject(self, generated):
        fact, documents = generated
        profiles = [doc for doc in documents if doc.kind == "profile"]
        assert profiles
        assert all(fact.subject_name in doc.title for doc in profiles)

    def test_corpus_provenance_and_coverage(self, world, factbench_small):
        generator = WebCorpusGenerator(world, WebCorpusConfig(documents_per_fact=10, seed=3))
        corpus = generator.build_corpus(factbench_small.facts()[:6])
        stats = corpus.stats()
        assert stats["num_facts_with_documents"] == 6
        assert 0.6 < stats["text_coverage_rate"] <= 1.0

    def test_deterministic_per_fact(self, world, factbench_small):
        fact = factbench_small[0]
        first = WebCorpusGenerator(world, WebCorpusConfig(seed=4)).documents_for_fact(fact)
        second = WebCorpusGenerator(world, WebCorpusConfig(seed=4)).documents_for_fact(fact)
        assert [d.text for d in first] == [d.text for d in second]


class TestMockSearchAPI:
    def test_search_returns_serp_entries(self, search_api):
        results = search_api.search("profile and background", num=5)
        assert len(results) <= 5
        for rank, entry in enumerate(results, start=1):
            assert entry.rank == rank
            assert entry.url.startswith("https://")

    def test_fetch_content_roundtrip(self, search_api, corpus_small):
        document = next(doc for doc in corpus_small if not doc.is_empty)
        assert search_api.fetch_content(document.url) == document.text
        assert search_api.fetch_document(document.url).doc_id == document.doc_id

    def test_fetch_unknown_url(self, search_api):
        assert search_api.fetch_content("https://unknown.example/page") is None

    def test_query_log_records_parameters(self, search_api):
        search_api.reset_log()
        search_api.search("some query", gl="us", num=3)
        log = search_api.query_log()
        assert log[-1]["q"] == "some query"
        assert log[-1]["num"] == "3"
        search_api.reset_log()
        assert search_api.query_log() == []
