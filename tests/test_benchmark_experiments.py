"""Tests for the table/figure experiment definitions (qualitative result shape).

These are the "reproduction" tests: they assert the qualitative findings the
paper reports, not absolute numbers — RAG improving over DKA, YAGO's F1(F)
collapse, the DKA < GIV < RAG latency ordering, consensus tie rates shrinking
under RAG, and so on.
"""

import pytest

from repro.benchmark import (
    figure2_ranked_f1,
    figure3_pareto,
    figure4_upset,
    table2_dataset_statistics,
    table4_rag_configuration,
    table5_classwise_f1,
    table6_alignment,
    table7_consensus_f1,
    table8_execution_time,
)


@pytest.fixture(scope="session")
def f1_table(runner):
    return table5_classwise_f1(runner)


@pytest.fixture(scope="session")
def time_table(runner):
    return table8_execution_time(runner)


class TestTable2:
    def test_rows_and_gold_accuracies(self, runner):
        rows = {row["dataset"]: row for row in table2_dataset_statistics(runner)}
        assert set(rows) == {"factbench", "yago", "dbpedia"}
        assert rows["yago"]["gold_accuracy"] > rows["dbpedia"]["gold_accuracy"] > rows["factbench"]["gold_accuracy"]

    def test_dbpedia_has_most_predicates(self, runner):
        rows = {row["dataset"]: row for row in table2_dataset_statistics(runner)}
        assert rows["dbpedia"]["num_predicates"] >= rows["yago"]["num_predicates"]


class TestTable4:
    def test_configuration_rows(self, runner):
        rows = dict(table4_rag_configuration(runner))
        assert rows["Relevance Threshold"] == "0.5"
        assert rows["Selected Questions"] == "3"
        assert "Sliding Window" in rows["Chunking Strategy"]


class TestTable5:
    def test_grid_is_complete(self, runner, f1_table):
        for dataset in runner.config.datasets:
            for method in runner.config.methods:
                assert set(f1_table[dataset][method]) == set(runner.config.grid_models())

    def test_rag_beats_dka_on_factbench(self, f1_table):
        rag_scores = f1_table["factbench"]["rag"]
        dka_scores = f1_table["factbench"]["dka"]
        rag_mean = sum(s["f1_true"] for s in rag_scores.values()) / len(rag_scores)
        dka_mean = sum(s["f1_true"] for s in dka_scores.values()) / len(dka_scores)
        assert rag_mean > dka_mean
        # F1(F) gains are the noisiest signal at the 44-fact test scale (only
        # ~20 negatives); allow a wider tolerance than for F1(T) while still
        # catching a genuine collapse of the retrieval signal.
        rag_false_mean = sum(s["f1_false"] for s in rag_scores.values()) / len(rag_scores)
        dka_false_mean = sum(s["f1_false"] for s in dka_scores.values()) / len(dka_scores)
        assert rag_false_mean > dka_false_mean - 0.12

    def test_yago_f1_false_collapses(self, f1_table):
        for method in ("dka", "giv-z", "giv-f"):
            for scores in f1_table["yago"][method].values():
                assert scores["f1_false"] <= 0.35

    def test_commercial_model_weak_on_true_class_internal_knowledge(self, f1_table):
        gpt = f1_table["factbench"]["dka"]["gpt-4o-mini"]
        gemma = f1_table["factbench"]["dka"]["gemma2:9b"]
        assert gpt["f1_true"] < gemma["f1_true"]

    def test_rag_lifts_commercial_model(self, f1_table):
        gpt_dka = f1_table["factbench"]["dka"]["gpt-4o-mini"]["f1_true"]
        gpt_rag = f1_table["factbench"]["rag"]["gpt-4o-mini"]["f1_true"]
        assert gpt_rag > gpt_dka

    def test_scores_are_probabilities(self, f1_table):
        for dataset in f1_table.values():
            for method in dataset.values():
                for scores in method.values():
                    assert 0.0 <= scores["f1_true"] <= 1.0
                    assert 0.0 <= scores["f1_false"] <= 1.0


class TestTable6And7:
    def test_alignment_and_tie_rates(self, runner):
        alignment, ties = table6_alignment(runner)
        for dataset in runner.config.datasets:
            for method in runner.config.methods:
                assert set(alignment[dataset][method]) == set(runner.config.models)
                assert 0.0 <= ties[dataset][method] <= 1.0
                for value in alignment[dataset][method].values():
                    assert 0.0 <= value <= 1.0

    def test_rag_reduces_ties_compared_to_givz(self, runner):
        __, ties = table6_alignment(runner)
        rag_mean = sum(ties[d]["rag"] for d in runner.config.datasets) / len(runner.config.datasets)
        givz_mean = sum(ties[d]["giv-z"] for d in runner.config.datasets) / len(runner.config.datasets)
        assert rag_mean <= givz_mean + 0.05

    def test_consensus_table_judges_agree_closely(self, runner):
        table = table7_consensus_f1(runner)
        for dataset, methods in table.items():
            for method, judges in methods.items():
                values = [entry["f1_true"] for entry in judges.values()]
                assert max(values) - min(values) <= 0.30


class TestTable8:
    def test_method_cost_ordering(self, runner, time_table):
        for dataset in runner.config.datasets:
            for model in runner.config.models:
                dka = time_table[dataset]["dka"][model]
                giv_z = time_table[dataset]["giv-z"][model]
                giv_f = time_table[dataset]["giv-f"][model]
                rag = time_table[dataset]["rag"][model]
                assert dka < giv_z < giv_f < rag

    def test_rag_is_several_times_dka(self, runner, time_table):
        for dataset in runner.config.datasets:
            for model in runner.config.models:
                assert time_table[dataset]["rag"][model] >= 3 * time_table[dataset]["dka"][model]

    def test_mistral_fastest_on_dka(self, time_table):
        dka = time_table["factbench"]["dka"]
        assert dka["mistral:7b"] == min(dka.values())


class TestFigures:
    def test_figure2_contains_consensus_and_baseline(self, runner):
        figure = figure2_ranked_f1(runner)
        labels = {entry["label"] for entry in figure["ranked_by_f1_true"]}
        assert any(label.startswith("agg-cons-up") for label in labels)
        assert 0.0 < figure["random_guess_f1_true"] < 1.0
        assert figure["random_guess_f1_false"] < figure["random_guess_f1_true"]

    def test_figure2_rankings_sorted(self, runner):
        figure = figure2_ranked_f1(runner)
        values = [entry["f1_false"] for entry in figure["ranked_by_f1_false"]]
        assert values == sorted(values, reverse=True)

    def test_figure3_frontier_structure_and_rag_quality(self, runner):
        figure = figure3_pareto(runner)
        points = figure["points"]
        frontier = figure["frontier_f1_false"]
        assert points and frontier
        # Frontier is sorted by time with strictly improving quality.
        times = [point.time_seconds for point in frontier]
        qualities = [point.f1_false for point in frontier]
        assert times == sorted(times)
        assert qualities == sorted(qualities)
        # The cheap end of the frontier is an internal-knowledge method, the
        # expensive end is retrieval-augmented, and RAG's best F1(T)
        # configuration is competitive with the best configuration overall
        # (F1(F) is too noisy at the 44-fact test scale for a per-cell check).
        assert frontier[0].method in ("dka", "giv-z")
        assert max(points, key=lambda point: point.time_seconds).method == "rag"
        best_overall_true = max(point.f1_true for point in points)
        best_rag_true = max(point.f1_true for point in points if point.method == "rag")
        assert best_rag_true >= best_overall_true - 0.1

    def test_figure4_all_model_cell_is_largest_for_rag(self, runner):
        cells_by_method = figure4_upset(runner)
        rag_cells = cells_by_method["rag"]
        assert rag_cells
        top = rag_cells[0]
        assert len(top.models) >= 3

    def test_figure4_counts_bounded_by_dataset_sizes(self, runner):
        total_facts = sum(len(runner.dataset(name)) for name in runner.config.datasets)
        for cells in figure4_upset(runner).values():
            assert sum(cell.count for cell in cells) <= total_facts
