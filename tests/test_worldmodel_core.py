"""Tests for world-model entities, fact store, and world generation."""

import pytest

from repro.worldmodel import (
    RELATIONS,
    Entity,
    EntityType,
    Fact,
    FactStore,
    World,
    WorldConfig,
    build_world,
    relation_spec,
)


class TestRelationSchema:
    def test_every_relation_has_templates(self):
        for name, spec in RELATIONS.items():
            assert "{s}" in spec.template and "{o}" in spec.template, name
            assert spec.question_templates, name

    def test_relation_spec_lookup(self):
        assert relation_spec("birthPlace").range is EntityType.CITY

    def test_relation_spec_unknown_raises(self):
        with pytest.raises(KeyError):
            relation_spec("definitelyNotARelation")

    def test_functional_relations_marked(self):
        assert relation_spec("capital").functional
        assert not relation_spec("starring").functional

    def test_categories_are_known(self):
        allowed = {"relationship", "role", "geographic", "genre", "biographical"}
        assert {spec.category for spec in RELATIONS.values()} <= allowed


class TestEntity:
    def test_attribute_lookup(self):
        entity = Entity("e1", "Thing", EntityType.PERSON, attributes=(("year", 1990),))
        assert entity.attribute("year") == 1990
        assert entity.attribute("missing", "default") == "default"

    def test_entities_are_hashable_and_frozen(self):
        entity = Entity("e1", "Thing", EntityType.PERSON)
        with pytest.raises(AttributeError):
            entity.name = "Other"  # type: ignore[misc]
        assert entity in {entity}


class TestFactStore:
    def test_add_and_query(self):
        store = FactStore()
        store.add("a", "birthPlace", "b")
        assert store.is_true("a", "birthPlace", "b")
        assert not store.is_true("a", "birthPlace", "c")
        assert store.objects("a", "birthPlace") == ["b"]
        assert store.subjects("birthPlace", "b") == ["a"]

    def test_duplicate_add_is_noop(self):
        store = FactStore()
        store.add("a", "p", "b")
        store.add("a", "p", "b")
        assert len(store) == 1
        assert store.objects("a", "p") == ["b"]

    def test_entity_index_covers_subject_and_object(self):
        store = FactStore()
        store.add("a", "p", "b")
        assert {fact.as_tuple() for fact in store.facts_for_entity("a")} == {("a", "p", "b")}
        assert {fact.as_tuple() for fact in store.facts_for_entity("b")} == {("a", "p", "b")}

    def test_predicates_sorted(self):
        store = FactStore()
        store.add("a", "zeta", "b")
        store.add("a", "alpha", "b")
        assert store.predicates() == ["alpha", "zeta"]

    def test_iteration_is_deterministic(self):
        store = FactStore()
        store.add("b", "p", "c")
        store.add("a", "p", "c")
        assert list(store) == sorted([Fact("b", "p", "c"), Fact("a", "p", "c")])


class TestWorldGeneration:
    def test_world_is_deterministic(self):
        one = build_world(WorldConfig(scale=0.1, seed=5))
        two = build_world(WorldConfig(scale=0.1, seed=5))
        assert one.describe() == two.describe()
        assert one.facts.all_facts()[:50] == two.facts.all_facts()[:50]

    def test_world_has_all_major_types(self, world):
        populated = {etype for etype, entities in world.by_type.items() if entities}
        for required in (
            EntityType.PERSON,
            EntityType.CITY,
            EntityType.COUNTRY,
            EntityType.FILM,
            EntityType.ORGANIZATION,
        ):
            assert required in populated

    def test_every_person_has_birthplace_and_nationality(self, world):
        persons = world.entities_of_type(EntityType.PERSON)
        assert persons
        for person in persons[:50]:
            assert world.true_objects(person.entity_id, "birthPlace")
            assert world.true_objects(person.entity_id, "nationality")

    def test_functional_relations_have_single_object(self, world):
        for person in world.entities_of_type(EntityType.PERSON)[:80]:
            assert len(world.true_objects(person.entity_id, "birthPlace")) == 1

    def test_nationality_consistent_with_birthplace(self, world):
        for person in world.entities_of_type(EntityType.PERSON)[:60]:
            birth_cities = world.true_objects(person.entity_id, "birthPlace")
            nationalities = world.true_objects(person.entity_id, "nationality")
            located_in = world.true_objects(birth_cities[0], "locatedIn")
            if located_in:
                assert nationalities[0] == located_in[0]

    def test_spouse_is_symmetric(self, world):
        for person in world.entities_of_type(EntityType.PERSON):
            for spouse_id in world.true_objects(person.entity_id, "spouse"):
                assert person.entity_id in world.true_objects(spouse_id, "spouse")

    def test_popularity_in_range(self, world):
        for entity in list(world.entities.values())[:200]:
            assert 0.0 < entity.popularity <= 1.0

    def test_fact_popularity_averages_entities(self, world):
        fact = world.facts.all_facts()[0]
        value = world.fact_popularity(fact)
        assert 0.0 < value <= 1.0

    def test_entity_lookup_by_name(self, world):
        entity = world.entities_of_type(EntityType.PERSON)[0]
        assert world.entity_by_name(entity.name) == entity
        assert world.entity_by_name("No Such Person") is None

    def test_unknown_entity_raises(self, world):
        with pytest.raises(KeyError):
            world.entity("person_99999")

    def test_duplicate_entity_rejected(self):
        world = World(WorldConfig())
        entity = Entity("x", "X", EntityType.PERSON)
        world.add_entity(entity)
        with pytest.raises(ValueError):
            world.add_entity(entity)

    def test_scaled_counts_respect_minimum(self):
        config = WorldConfig(scale=0.0001)
        assert config.scaled(1000) >= 4

    def test_describe_mentions_fact_count(self, world):
        summary = world.describe()
        assert summary["facts"] == len(world.facts)
