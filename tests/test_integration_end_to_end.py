"""End-to-end integration tests: from world generation to consensus verdicts."""

import pytest

from repro.benchmark import BenchmarkRunner, ExperimentConfig
from repro.datasets import load_dataset, save_dataset
from repro.evaluation import classwise_f1_from_run
from repro.validation import Verdict


@pytest.fixture(scope="module")
def tiny_runner():
    """A fully independent, very small runner (exercises the whole stack fresh)."""
    config = ExperimentConfig(
        scale=0.01,
        max_facts_per_dataset=14,
        world_scale=0.12,
        documents_per_fact=7,
        serp_results_per_query=10,
        datasets=("factbench", "yago"),
        seed=23,
    )
    return BenchmarkRunner(config)


class TestEndToEnd:
    def test_every_method_produces_full_runs(self, tiny_runner):
        for method in tiny_runner.config.methods:
            run = tiny_runner.run(method, "factbench", "gemma2:9b")
            assert len(run) == len(tiny_runner.dataset("factbench"))
            answered = [r for r in run.results if r.verdict in (Verdict.TRUE, Verdict.FALSE)]
            assert len(answered) >= len(run.results) * 0.7

    def test_rag_uses_evidence_for_most_facts(self, tiny_runner):
        run = tiny_runner.run("rag", "factbench", "gemma2:9b")
        with_evidence = [r for r in run.results if r.num_evidence_chunks > 0]
        assert len(with_evidence) >= len(run.results) * 0.6

    def test_consensus_pipeline_end_to_end(self, tiny_runner):
        consensus = tiny_runner.consensus("dka", "factbench", judge="commercial")
        assert len(consensus) == len(tiny_runner.dataset("factbench"))
        predictions = consensus.predictions()
        assert any(value is not None for value in predictions.values())

    def test_results_are_reproducible_across_runners(self):
        config = ExperimentConfig(
            scale=0.01,
            max_facts_per_dataset=10,
            world_scale=0.12,
            documents_per_fact=6,
            serp_results_per_query=8,
            datasets=("factbench",),
            seed=31,
        )
        run_a = BenchmarkRunner(config).run("dka", "factbench", "mistral:7b")
        run_b = BenchmarkRunner(config).run("dka", "factbench", "mistral:7b")
        assert run_a.verdicts() == run_b.verdicts()
        assert run_a.latencies() == run_b.latencies()

    def test_f1_better_than_random_on_factbench(self, tiny_runner):
        run = tiny_runner.run("rag", "factbench", "gemma2:9b")
        scores = classwise_f1_from_run(run)
        assert scores.f1_true > 0.5

    def test_dataset_roundtrip_through_disk_preserves_results(self, tiny_runner, tmp_path):
        dataset = tiny_runner.dataset("factbench")
        path = save_dataset(dataset, tmp_path / "factbench.jsonl")
        reloaded = load_dataset(path)
        strategy = tiny_runner.build_strategy("dka", "factbench", tiny_runner.registry.get("gemma2:9b"))
        original = {fact.fact_id: strategy.validate(fact).verdict for fact in dataset}
        restored = {fact.fact_id: strategy.validate(fact).verdict for fact in reloaded}
        assert original == restored

    def test_telemetry_accumulates_across_methods(self, tiny_runner):
        tiny_runner.run("dka", "factbench", "gemma2:9b")
        tiny_runner.run("rag", "factbench", "gemma2:9b")
        tasks = tiny_runner.telemetry.by_task()
        assert "dka" in tasks
        assert "rag" in tasks
        assert "transform" in tasks or "question-generation" in tasks
