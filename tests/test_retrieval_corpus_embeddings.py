"""Tests for corpus primitives, embeddings, and the cross-encoder substitute."""

import numpy as np
import pytest

from repro.retrieval import (
    Corpus,
    CrossEncoderReranker,
    Document,
    HashingEmbedder,
    cosine_similarity,
)


def _doc(doc_id, text="some text", source="encyclia.org", url=None):
    return Document(
        doc_id=doc_id,
        url=url or f"https://{source}/{doc_id}",
        title=f"title {doc_id}",
        text=text,
        source=source,
    )


class TestCorpus:
    def test_add_and_lookup(self):
        corpus = Corpus([_doc("a"), _doc("b")])
        assert len(corpus) == 2
        assert corpus.get("a").doc_id == "a"
        assert corpus.by_url("https://encyclia.org/a").doc_id == "a"
        assert "a" in corpus and "missing" not in corpus

    def test_duplicate_id_rejected(self):
        corpus = Corpus([_doc("a")])
        with pytest.raises(ValueError):
            corpus.add(_doc("a"))

    def test_filter_sources_suffix_match(self):
        corpus = Corpus([
            _doc("a", source="en.wikipedia.org"),
            _doc("b", source="encyclia.org"),
        ])
        remaining = corpus.filter_sources(["wikipedia.org"])
        assert [doc.doc_id for doc in remaining] == ["b"]

    def test_empty_and_coverage(self):
        corpus = Corpus([_doc("a", text=""), _doc("b"), _doc("c")])
        assert corpus.empty_count() == 1
        assert corpus.text_coverage_rate() == pytest.approx(2 / 3)

    def test_stats_keys(self):
        corpus = Corpus([_doc("a"), _doc("b", text="")])
        stats = corpus.stats()
        assert stats["num_documents"] == 2
        assert "text_coverage_rate" in stats

    def test_empty_corpus_coverage_zero(self):
        assert Corpus().text_coverage_rate() == 0.0


class TestEmbeddings:
    def test_embedding_normalised(self):
        embedder = HashingEmbedder(dimensions=64)
        vector = embedder.embed("knowledge graphs store facts")
        assert np.isclose(np.linalg.norm(vector), 1.0)

    def test_empty_text_zero_vector(self):
        embedder = HashingEmbedder(dimensions=64)
        assert np.linalg.norm(embedder.embed("   ")) == 0.0

    def test_similarity_of_related_texts_higher(self):
        embedder = HashingEmbedder()
        related = embedder.similarity(
            "Marie Curie was born in Warsaw", "Where was Marie Curie born?"
        )
        unrelated = embedder.similarity(
            "Marie Curie was born in Warsaw", "The stock market closed higher today"
        )
        assert related > unrelated

    def test_similarity_is_symmetric(self):
        embedder = HashingEmbedder()
        a, b = "alpha beta gamma", "beta gamma delta"
        assert embedder.similarity(a, b) == pytest.approx(embedder.similarity(b, a))

    def test_cache_returns_same_array(self):
        embedder = HashingEmbedder()
        first = embedder.embed("cached text")
        second = embedder.embed("cached text")
        assert first is second

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            HashingEmbedder(dimensions=0)

    def test_embed_many_shape(self):
        embedder = HashingEmbedder(dimensions=32)
        matrix = embedder.embed_many(["a b", "c d", "e f"])
        assert matrix.shape == (3, 32)
        assert embedder.embed_many([]).shape == (0, 32)

    def test_embed_many_matches_embed(self):
        embedder = HashingEmbedder(dimensions=64)
        texts = ["knowledge graphs store facts", "Marie Curie", "", "born in Warsaw"]
        batch = HashingEmbedder(dimensions=64).embed_many(texts)
        for row, text in zip(batch, texts):
            assert np.allclose(row, embedder.embed(text))

    def test_hot_entry_survives_eviction_pressure(self):
        # Regression: the seed cache *cleared itself* when full, evicting the
        # hottest entries; the LRU must keep a recently-touched entry alive.
        embedder = HashingEmbedder(dimensions=16, cache_size=4)
        hot = embedder.embed("hot text")
        for index in range(10):
            embedder.embed(f"filler number {index}")
            assert embedder.embed("hot text") is hot  # still the cached object

    def test_cold_entry_is_evicted(self):
        embedder = HashingEmbedder(dimensions=16, cache_size=2)
        cold = embedder.embed("cold text")
        embedder.embed("warm text")
        embedder.embed("newer text")  # evicts "cold text" (least recent)
        assert embedder.embed("cold text") is not cold

    def test_warm_precomputes_corpus(self):
        embedder = HashingEmbedder(dimensions=32)
        corpus = ["alpha beta", "gamma delta", "alpha beta"]
        assert embedder.warm(corpus) == 2  # duplicates collapse
        assert embedder.warm(corpus) == 0  # already resident
        first = embedder.embed("alpha beta")
        assert embedder.embed("alpha beta") is first

    def test_cosine_zero_vectors(self):
        assert cosine_similarity(np.zeros(4), np.ones(4)) == 0.0


class TestReranker:
    def test_scores_in_unit_interval(self):
        reranker = CrossEncoderReranker()
        score = reranker.score("Marie Curie birthplace", "Marie Curie was born in Warsaw.")
        assert 0.0 <= score <= 1.0

    def test_relevant_candidate_ranked_first(self):
        reranker = CrossEncoderReranker()
        query = "Aldric Fenwick was born in Brimworth."
        candidates = [
            "The weather in coastal regions has been unusually mild this season.",
            "Aldric Fenwick was born in Brimworth and studied engineering.",
            "Stock prices of Apex Industries rallied after the announcement.",
        ]
        ranked = reranker.rank(query, candidates)
        assert ranked[0].index == 1
        assert ranked[0].score > ranked[-1].score

    def test_empty_inputs_score_zero(self):
        reranker = CrossEncoderReranker()
        assert reranker.score("", "text") == 0.0
        assert reranker.score("query", "  ") == 0.0

    def test_top_k_bounds(self):
        reranker = CrossEncoderReranker()
        results = reranker.top_k("query terms", ["query terms here", "other", "query"], k=2)
        assert len(results) == 2
        assert reranker.top_k("q", ["a"], k=0) == []

    def test_filter_by_threshold(self):
        reranker = CrossEncoderReranker()
        query = "Aldric Fenwick Brimworth"
        candidates = ["Aldric Fenwick lives in Brimworth", "completely unrelated sentence"]
        kept = reranker.filter_by_threshold(query, candidates, threshold=0.5)
        assert all(item.score >= 0.5 for item in kept)
        assert any(item.index == 0 for item in kept)

    def test_ties_broken_by_index(self):
        reranker = CrossEncoderReranker()
        ranked = reranker.rank("zzz", ["same text", "same text"])
        assert [item.index for item in ranked] == [0, 1]
