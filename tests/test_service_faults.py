"""Fault injection for the sharded router: failures surface, nothing hangs.

The router's contract under faults:

* a shard whose strategy *raises* mid-batch answers with an explicit
  ``FAILED`` outcome (error detail attached) — the co-scattered requests
  on healthy shards are unaffected;
* a shard that *stalls* mid-batch is abandoned after ``request_timeout_s``
  with a ``FAILED`` outcome instead of blocking the caller forever;
* every scatter-gather slot is filled: no silent drops, no hangs;
* ``stop(drain=True)`` answers every admitted request on every shard
  before the workers die.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.benchmark import BenchmarkRunner, ExperimentConfig
from repro.service import (
    RequestOutcome,
    ServiceConfig,
    ServiceRequest,
    ServiceResponse,
    ShardedValidationService,
    ValidationService,
)
from repro.validation.base import ValidationResult, ValidationStrategy, Verdict


@pytest.fixture(scope="module")
def fault_runner():
    return BenchmarkRunner(
        ExperimentConfig(
            scale=0.03,
            max_facts_per_dataset=16,
            world_scale=0.15,
            methods=("dka",),
            datasets=("factbench",),
            models=("gemma2:9b",),
            include_commercial_in_grid=False,
            seed=11,
        )
    )


class _StallingStrategy(ValidationStrategy):
    """Returns verdicts whose simulated latency stalls the shard worker."""

    name = "stall"

    def __init__(self, simulated_seconds: float) -> None:
        self.simulated_seconds = simulated_seconds

    def validate(self, fact) -> ValidationResult:
        return ValidationResult(
            fact_id=fact.fact_id,
            verdict=Verdict.TRUE,
            gold_label=fact.label,
            model="stall-model",
            method=self.name,
            latency_seconds=self.simulated_seconds,
            prompt_tokens=1,
            completion_tokens=1,
            raw_response="stalling",
        )


def _poisoned_router(runner, num_shards, poison_shards, config, *, stall=None,
                     request_timeout_s=None):
    """A router whose listed shard indexes raise (or stall) instead of judging."""

    def healthy(method, dataset, model):
        return runner.build_strategy(method, dataset, runner.registry.get(model))

    shards = []
    for index in range(num_shards):
        if index in poison_shards:
            if stall is not None:
                provider = lambda method, dataset, model: _StallingStrategy(stall)
            else:
                def provider(method, dataset, model):
                    raise ConnectionError("shard backend unreachable")
        else:
            provider = healthy
        shards.append(ValidationService(provider, config))
    return ShardedValidationService(
        shards, request_timeout_s=request_timeout_s
    )


class TestShardFailuresSurface:
    def test_raising_shard_yields_failed_never_an_exception_or_drop(self, fault_runner):
        dataset = fault_runner.dataset("factbench")
        requests = [ServiceRequest(fact, "dka", "gemma2:9b") for fact in dataset]
        config = ServiceConfig(enable_cache=False, max_batch_size=4)
        router = _poisoned_router(fault_runner, 3, {1}, config)

        async def go():
            async with router:
                return await router.submit_many(requests)

        responses = asyncio.run(go())
        # Every slot filled, outcomes explicit, nothing raised to the caller.
        assert len(responses) == len(requests)
        for request, response in zip(requests, responses):
            owner = router.shard_for(request)
            if owner == 1:
                assert response.outcome is RequestOutcome.FAILED
                assert response.result is None
                assert "shard 1 failed" in response.error
                assert "ConnectionError" in response.error
            else:
                assert response.outcome is RequestOutcome.COMPLETED
                assert response.result.fact_id == request.fact.fact_id
        failed = [r for r in responses if r.failed]
        assert failed, "the poisoned shard owned no request (routing broke?)"
        # Accounting is exact, not doubled: each raised request was already
        # counted by its shard's own errors counter, so the fleet snapshot
        # reports it exactly once (router timeouts would add on top).
        assert router.metrics.failures == len(failed)
        assert router.metrics.timeout_failures == 0
        snapshot = router.metrics.snapshot()
        assert snapshot.errors == len(failed)
        assert snapshot.completed == len(responses) - len(failed)
        assert snapshot.completed + snapshot.rejected + snapshot.errors == len(requests)

    def test_healthy_shard_verdicts_unaffected_by_sick_neighbour(self, fault_runner):
        dataset = fault_runner.dataset("factbench")
        requests = [ServiceRequest(fact, "dka", "gemma2:9b") for fact in dataset]
        config = ServiceConfig(enable_cache=False, max_batch_size=4)

        async def run_router(router):
            async with router:
                return await router.submit_many(requests)

        sick = asyncio.run(run_router(_poisoned_router(fault_runner, 3, {1}, config)))
        healthy = asyncio.run(
            run_router(
                ShardedValidationService.from_runner(fault_runner, 3, config)
            )
        )
        for sick_response, healthy_response in zip(sick, healthy):
            if sick_response.outcome is RequestOutcome.COMPLETED:
                assert sick_response.result == healthy_response.result

    def test_stalled_shard_times_out_with_failed_not_a_hang(self, fault_runner):
        dataset = fault_runner.dataset("factbench")
        requests = [ServiceRequest(fact, "dka", "gemma2:9b") for fact in dataset]
        # The poisoned shard's simulated latency is 1000 s scaled at 0.01 —
        # a 10-second real stall; the router abandons it after 0.2 s.
        config = ServiceConfig(enable_cache=False, max_batch_size=4, time_scale=0.01)
        router = _poisoned_router(
            fault_runner, 3, {0}, config, stall=1000.0, request_timeout_s=0.2
        )

        async def go():
            async with router:
                return await router.submit_many(requests)

        responses = asyncio.run(asyncio.wait_for(go(), timeout=5.0))
        assert len(responses) == len(requests)
        stalled = [r for r in responses if r.failed]
        assert stalled, "the stalled shard owned no request (routing broke?)"
        # Timeouts are invisible to the shard's own counters, so the router
        # folds exactly these into the fleet errors.
        assert router.metrics.timeout_failures == len(stalled)
        assert router.metrics.snapshot().errors == len(stalled)
        for response in stalled:
            assert "stalled past" in response.error
            assert response.latency_seconds < 1.0
        # Healthy shards answered normally despite the sick neighbour.
        assert any(r.outcome is RequestOutcome.COMPLETED for r in responses)

    def test_rejected_passes_through_as_shed_not_failed(self, fault_runner):
        dataset = fault_runner.dataset("factbench")
        requests = [ServiceRequest(fact, "dka", "gemma2:9b") for fact in dataset]
        config = ServiceConfig(
            enable_cache=False, max_batch_size=1, queue_depth=1, time_scale=0.01
        )
        router = ShardedValidationService.from_runner(fault_runner, 2, config)

        async def go():
            async with router:
                return await router.submit_many(requests)

        responses = asyncio.run(go())
        outcomes = {response.outcome for response in responses}
        assert RequestOutcome.REJECTED in outcomes  # per-shard admission control
        assert RequestOutcome.FAILED not in outcomes  # shedding is not a fault
        assert all(
            response.outcome in (RequestOutcome.COMPLETED, RequestOutcome.REJECTED)
            for response in responses
        )


class TestDrainAcrossShards:
    def test_stop_drain_true_answers_every_admitted_request_on_every_shard(
        self, fault_runner
    ):
        dataset = fault_runner.dataset("factbench")
        router = ShardedValidationService.from_runner(
            fault_runner,
            3,
            ServiceConfig(enable_cache=False, max_batch_size=1, time_scale=0.05),
        )
        requests = [ServiceRequest(fact, "dka", "gemma2:9b") for fact in dataset]

        async def go():
            await router.start()
            tasks = [
                asyncio.create_task(router.submit(request)) for request in requests
            ]
            await asyncio.sleep(0.01)  # batches mid-sleep on several shards
            assert router.pending > 0
            await asyncio.wait_for(router.stop(drain=True), timeout=10.0)
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)
            assert all(isinstance(outcome, ServiceResponse) for outcome in outcomes)
            assert all(
                outcome.outcome is RequestOutcome.COMPLETED for outcome in outcomes
            )
            # Every shard that owned work reports it completed.
            per_shard = [snapshot.completed for snapshot in router.metrics.per_shard()]
            assert sum(per_shard) == len(requests)
            assert router.pending == 0

        asyncio.run(go())

    def test_stop_drain_does_not_wait_on_dead_replica_queue(self, fault_runner):
        """Regression: drain-stop on a router whose shard has an unhealthy
        replica must hard-stop that replica instead of waiting for its
        wedged queue to empty (pre-fix this hung for the stall's full
        duration — hours of simulated latency)."""
        config = ServiceConfig(enable_cache=False, max_batch_size=1, time_scale=1.0)

        def healthy_provider(method, dataset, model):
            return fault_runner.build_strategy(
                method, dataset, fault_runner.registry.get(model)
            )

        healthy = ValidationService(healthy_provider, config)
        # A replica wedged mid-batch for a simulated hour of real time.
        stalling = ValidationService(
            lambda method, dataset, model: _StallingStrategy(3600.0), config
        )
        router = ShardedValidationService([[healthy, stalling]])
        dataset = fault_runner.dataset("factbench")
        request = ServiceRequest(dataset[0], "dka", "gemma2:9b")

        async def go():
            await router.start()
            # Pin one request on the sick replica (direct submit bypasses
            # the balancer) so its queue is genuinely non-empty at stop.
            stuck = asyncio.create_task(stalling.submit(request))
            await asyncio.sleep(0.05)
            assert stalling.pending == 1
            router.mark_unhealthy(0, 1)
            started = time.perf_counter()
            await asyncio.wait_for(router.stop(drain=True), timeout=2.0)
            assert time.perf_counter() - started < 2.0
            # The wedged request is abandoned explicitly (the hard-stop
            # contract), never silently dropped or waited out.
            (outcome,) = await asyncio.gather(stuck, return_exceptions=True)
            assert isinstance(outcome, asyncio.CancelledError)
            assert stalling.pending == 0
            assert router.pending == 0

        asyncio.run(go())

    def test_stop_drain_still_answers_healthy_replicas_alongside_dead_one(
        self, fault_runner
    ):
        """The drain fix must not weaken the healthy-side guarantee: admitted
        requests on healthy replicas are still answered during drain-stop."""
        config = ServiceConfig(enable_cache=False, max_batch_size=1, time_scale=0.05)

        def healthy_provider(method, dataset, model):
            return fault_runner.build_strategy(
                method, dataset, fault_runner.registry.get(model)
            )

        healthy = ValidationService(healthy_provider, config)
        stalling = ValidationService(
            lambda method, dataset, model: _StallingStrategy(3600.0), config
        )
        router = ShardedValidationService([[healthy, stalling]])
        dataset = fault_runner.dataset("factbench")
        requests = [ServiceRequest(fact, "dka", "gemma2:9b") for fact in dataset][:4]

        async def go():
            await router.start()
            router.mark_unhealthy(0, 1)  # all traffic lands on the healthy replica
            tasks = [
                asyncio.create_task(router.submit(request)) for request in requests
            ]
            await asyncio.sleep(0.01)
            assert router.pending > 0
            await asyncio.wait_for(router.stop(drain=True), timeout=10.0)
            outcomes = await asyncio.gather(*tasks)
            assert all(
                outcome.outcome is RequestOutcome.COMPLETED for outcome in outcomes
            )

        asyncio.run(go())

    def test_stop_drain_still_drains_sole_unhealthy_replica(self, fault_runner):
        """A single-replica shard marked unhealthy by a transient fault is
        still the only path to an answer for its admitted requests —
        drain-stop must answer them, not hard-cancel (the PR 4 contract)."""
        router = ShardedValidationService.from_runner(
            fault_runner,
            2,
            ServiceConfig(enable_cache=False, max_batch_size=1, time_scale=0.05),
        )
        dataset = fault_runner.dataset("factbench")
        requests = [ServiceRequest(fact, "dka", "gemma2:9b") for fact in dataset][:6]

        async def go():
            await router.start()
            tasks = [
                asyncio.create_task(router.submit(request)) for request in requests
            ]
            await asyncio.sleep(0.01)
            assert router.pending > 0
            # Transient faults marked both sole replicas unhealthy, but they
            # are alive and serving everything.
            router.mark_unhealthy(0, 0)
            router.mark_unhealthy(1, 0)
            await asyncio.wait_for(router.stop(drain=True), timeout=10.0)
            outcomes = await asyncio.gather(*tasks)
            assert all(
                outcome.outcome is RequestOutcome.COMPLETED for outcome in outcomes
            )

        asyncio.run(go())

    def test_hard_stop_cancels_instead_of_hanging(self, fault_runner):
        dataset = fault_runner.dataset("factbench")
        router = ShardedValidationService.from_runner(
            fault_runner,
            2,
            ServiceConfig(enable_cache=False, max_batch_size=1, time_scale=0.05),
        )
        requests = [ServiceRequest(fact, "dka", "gemma2:9b") for fact in dataset][:6]

        async def go():
            await router.start()
            tasks = [
                asyncio.create_task(router.submit(request)) for request in requests
            ]
            await asyncio.sleep(0.01)
            await asyncio.wait_for(router.stop(drain=False), timeout=2.0)
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)
            # The hard stop is explicit about abandonment: every in-flight
            # request fails with CancelledError, none blocks forever.
            assert all(
                isinstance(outcome, asyncio.CancelledError) for outcome in outcomes
            )

        asyncio.run(go())
