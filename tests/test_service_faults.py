"""Fault injection for the sharded router: failures surface, nothing hangs.

The router's contract under faults:

* a shard whose strategy *raises* mid-batch answers with an explicit
  ``FAILED`` outcome (error detail attached) — the co-scattered requests
  on healthy shards are unaffected;
* a shard that *stalls* mid-batch is abandoned after ``request_timeout_s``
  with a ``FAILED`` outcome instead of blocking the caller forever;
* every scatter-gather slot is filled: no silent drops, no hangs;
* ``stop(drain=True)`` answers every admitted request on every shard
  before the workers die.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.benchmark import BenchmarkRunner, ExperimentConfig
from repro.service import (
    RequestOutcome,
    ServiceConfig,
    ServiceRequest,
    ServiceResponse,
    ShardedValidationService,
    ValidationService,
)
from repro.validation.base import ValidationResult, ValidationStrategy, Verdict


@pytest.fixture(scope="module")
def fault_runner():
    return BenchmarkRunner(
        ExperimentConfig(
            scale=0.03,
            max_facts_per_dataset=16,
            world_scale=0.15,
            methods=("dka",),
            datasets=("factbench",),
            models=("gemma2:9b",),
            include_commercial_in_grid=False,
            seed=11,
        )
    )


class _StallingStrategy(ValidationStrategy):
    """Returns verdicts whose simulated latency stalls the shard worker."""

    name = "stall"

    def __init__(self, simulated_seconds: float) -> None:
        self.simulated_seconds = simulated_seconds

    def validate(self, fact) -> ValidationResult:
        return ValidationResult(
            fact_id=fact.fact_id,
            verdict=Verdict.TRUE,
            gold_label=fact.label,
            model="stall-model",
            method=self.name,
            latency_seconds=self.simulated_seconds,
            prompt_tokens=1,
            completion_tokens=1,
            raw_response="stalling",
        )


def _poisoned_router(runner, num_shards, poison_shards, config, *, stall=None,
                     request_timeout_s=None):
    """A router whose listed shard indexes raise (or stall) instead of judging."""

    def healthy(method, dataset, model):
        return runner.build_strategy(method, dataset, runner.registry.get(model))

    shards = []
    for index in range(num_shards):
        if index in poison_shards:
            if stall is not None:
                provider = lambda method, dataset, model: _StallingStrategy(stall)
            else:
                def provider(method, dataset, model):
                    raise ConnectionError("shard backend unreachable")
        else:
            provider = healthy
        shards.append(ValidationService(provider, config))
    return ShardedValidationService(
        shards, request_timeout_s=request_timeout_s
    )


class TestShardFailuresSurface:
    def test_raising_shard_yields_failed_never_an_exception_or_drop(self, fault_runner):
        dataset = fault_runner.dataset("factbench")
        requests = [ServiceRequest(fact, "dka", "gemma2:9b") for fact in dataset]
        config = ServiceConfig(enable_cache=False, max_batch_size=4)
        router = _poisoned_router(fault_runner, 3, {1}, config)

        async def go():
            async with router:
                return await router.submit_many(requests)

        responses = asyncio.run(go())
        # Every slot filled, outcomes explicit, nothing raised to the caller.
        assert len(responses) == len(requests)
        for request, response in zip(requests, responses):
            owner = router.shard_for(request)
            if owner == 1:
                assert response.outcome is RequestOutcome.FAILED
                assert response.result is None
                assert "shard 1 failed" in response.error
                assert "ConnectionError" in response.error
            else:
                assert response.outcome is RequestOutcome.COMPLETED
                assert response.result.fact_id == request.fact.fact_id
        failed = [r for r in responses if r.failed]
        assert failed, "the poisoned shard owned no request (routing broke?)"
        # Accounting is exact, not doubled: each raised request was already
        # counted by its shard's own errors counter, so the fleet snapshot
        # reports it exactly once (router timeouts would add on top).
        assert router.metrics.failures == len(failed)
        assert router.metrics.timeout_failures == 0
        snapshot = router.metrics.snapshot()
        assert snapshot.errors == len(failed)
        assert snapshot.completed == len(responses) - len(failed)
        assert snapshot.completed + snapshot.rejected + snapshot.errors == len(requests)

    def test_healthy_shard_verdicts_unaffected_by_sick_neighbour(self, fault_runner):
        dataset = fault_runner.dataset("factbench")
        requests = [ServiceRequest(fact, "dka", "gemma2:9b") for fact in dataset]
        config = ServiceConfig(enable_cache=False, max_batch_size=4)

        async def run_router(router):
            async with router:
                return await router.submit_many(requests)

        sick = asyncio.run(run_router(_poisoned_router(fault_runner, 3, {1}, config)))
        healthy = asyncio.run(
            run_router(
                ShardedValidationService.from_runner(fault_runner, 3, config)
            )
        )
        for sick_response, healthy_response in zip(sick, healthy):
            if sick_response.outcome is RequestOutcome.COMPLETED:
                assert sick_response.result == healthy_response.result

    def test_stalled_shard_times_out_with_failed_not_a_hang(self, fault_runner):
        dataset = fault_runner.dataset("factbench")
        requests = [ServiceRequest(fact, "dka", "gemma2:9b") for fact in dataset]
        # The poisoned shard's simulated latency is 1000 s scaled at 0.01 —
        # a 10-second real stall; the router abandons it after 0.2 s.
        config = ServiceConfig(enable_cache=False, max_batch_size=4, time_scale=0.01)
        router = _poisoned_router(
            fault_runner, 3, {0}, config, stall=1000.0, request_timeout_s=0.2
        )

        async def go():
            async with router:
                return await router.submit_many(requests)

        responses = asyncio.run(asyncio.wait_for(go(), timeout=5.0))
        assert len(responses) == len(requests)
        stalled = [r for r in responses if r.failed]
        assert stalled, "the stalled shard owned no request (routing broke?)"
        # Timeouts are invisible to the shard's own counters, so the router
        # folds exactly these into the fleet errors.
        assert router.metrics.timeout_failures == len(stalled)
        assert router.metrics.snapshot().errors == len(stalled)
        for response in stalled:
            assert "stalled past" in response.error
            assert response.latency_seconds < 1.0
        # Healthy shards answered normally despite the sick neighbour.
        assert any(r.outcome is RequestOutcome.COMPLETED for r in responses)

    def test_rejected_passes_through_as_shed_not_failed(self, fault_runner):
        dataset = fault_runner.dataset("factbench")
        requests = [ServiceRequest(fact, "dka", "gemma2:9b") for fact in dataset]
        config = ServiceConfig(
            enable_cache=False, max_batch_size=1, queue_depth=1, time_scale=0.01
        )
        router = ShardedValidationService.from_runner(fault_runner, 2, config)

        async def go():
            async with router:
                return await router.submit_many(requests)

        responses = asyncio.run(go())
        outcomes = {response.outcome for response in responses}
        assert RequestOutcome.REJECTED in outcomes  # per-shard admission control
        assert RequestOutcome.FAILED not in outcomes  # shedding is not a fault
        assert all(
            response.outcome in (RequestOutcome.COMPLETED, RequestOutcome.REJECTED)
            for response in responses
        )


class TestDrainAcrossShards:
    def test_stop_drain_true_answers_every_admitted_request_on_every_shard(
        self, fault_runner
    ):
        dataset = fault_runner.dataset("factbench")
        router = ShardedValidationService.from_runner(
            fault_runner,
            3,
            ServiceConfig(enable_cache=False, max_batch_size=1, time_scale=0.05),
        )
        requests = [ServiceRequest(fact, "dka", "gemma2:9b") for fact in dataset]

        async def go():
            await router.start()
            tasks = [
                asyncio.create_task(router.submit(request)) for request in requests
            ]
            await asyncio.sleep(0.01)  # batches mid-sleep on several shards
            assert router.pending > 0
            await asyncio.wait_for(router.stop(drain=True), timeout=10.0)
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)
            assert all(isinstance(outcome, ServiceResponse) for outcome in outcomes)
            assert all(
                outcome.outcome is RequestOutcome.COMPLETED for outcome in outcomes
            )
            # Every shard that owned work reports it completed.
            per_shard = [snapshot.completed for snapshot in router.metrics.per_shard()]
            assert sum(per_shard) == len(requests)
            assert router.pending == 0

        asyncio.run(go())

    def test_stop_drain_does_not_wait_on_dead_replica_queue(self, fault_runner):
        """Regression: drain-stop on a router whose shard has an unhealthy
        replica must hard-stop that replica instead of waiting for its
        wedged queue to empty (pre-fix this hung for the stall's full
        duration — hours of simulated latency)."""
        config = ServiceConfig(enable_cache=False, max_batch_size=1, time_scale=1.0)

        def healthy_provider(method, dataset, model):
            return fault_runner.build_strategy(
                method, dataset, fault_runner.registry.get(model)
            )

        healthy = ValidationService(healthy_provider, config)
        # A replica wedged mid-batch for a simulated hour of real time.
        stalling = ValidationService(
            lambda method, dataset, model: _StallingStrategy(3600.0), config
        )
        router = ShardedValidationService([[healthy, stalling]])
        dataset = fault_runner.dataset("factbench")
        request = ServiceRequest(dataset[0], "dka", "gemma2:9b")

        async def go():
            await router.start()
            # Pin one request on the sick replica (direct submit bypasses
            # the balancer) so its queue is genuinely non-empty at stop.
            stuck = asyncio.create_task(stalling.submit(request))
            await asyncio.sleep(0.05)
            assert stalling.pending == 1
            router.mark_unhealthy(0, 1)
            started = time.perf_counter()
            await asyncio.wait_for(router.stop(drain=True), timeout=2.0)
            assert time.perf_counter() - started < 2.0
            # The wedged request is abandoned explicitly (the hard-stop
            # contract), never silently dropped or waited out.
            (outcome,) = await asyncio.gather(stuck, return_exceptions=True)
            assert isinstance(outcome, asyncio.CancelledError)
            assert stalling.pending == 0
            assert router.pending == 0

        asyncio.run(go())

    def test_stop_drain_still_answers_healthy_replicas_alongside_dead_one(
        self, fault_runner
    ):
        """The drain fix must not weaken the healthy-side guarantee: admitted
        requests on healthy replicas are still answered during drain-stop."""
        config = ServiceConfig(enable_cache=False, max_batch_size=1, time_scale=0.05)

        def healthy_provider(method, dataset, model):
            return fault_runner.build_strategy(
                method, dataset, fault_runner.registry.get(model)
            )

        healthy = ValidationService(healthy_provider, config)
        stalling = ValidationService(
            lambda method, dataset, model: _StallingStrategy(3600.0), config
        )
        router = ShardedValidationService([[healthy, stalling]])
        dataset = fault_runner.dataset("factbench")
        requests = [ServiceRequest(fact, "dka", "gemma2:9b") for fact in dataset][:4]

        async def go():
            await router.start()
            router.mark_unhealthy(0, 1)  # all traffic lands on the healthy replica
            tasks = [
                asyncio.create_task(router.submit(request)) for request in requests
            ]
            await asyncio.sleep(0.01)
            assert router.pending > 0
            await asyncio.wait_for(router.stop(drain=True), timeout=10.0)
            outcomes = await asyncio.gather(*tasks)
            assert all(
                outcome.outcome is RequestOutcome.COMPLETED for outcome in outcomes
            )

        asyncio.run(go())

    def test_stop_drain_still_drains_sole_unhealthy_replica(self, fault_runner):
        """A single-replica shard marked unhealthy by a transient fault is
        still the only path to an answer for its admitted requests —
        drain-stop must answer them, not hard-cancel (the PR 4 contract)."""
        router = ShardedValidationService.from_runner(
            fault_runner,
            2,
            ServiceConfig(enable_cache=False, max_batch_size=1, time_scale=0.05),
        )
        dataset = fault_runner.dataset("factbench")
        requests = [ServiceRequest(fact, "dka", "gemma2:9b") for fact in dataset][:6]

        async def go():
            await router.start()
            tasks = [
                asyncio.create_task(router.submit(request)) for request in requests
            ]
            await asyncio.sleep(0.01)
            assert router.pending > 0
            # Transient faults marked both sole replicas unhealthy, but they
            # are alive and serving everything.
            router.mark_unhealthy(0, 0)
            router.mark_unhealthy(1, 0)
            await asyncio.wait_for(router.stop(drain=True), timeout=10.0)
            outcomes = await asyncio.gather(*tasks)
            assert all(
                outcome.outcome is RequestOutcome.COMPLETED for outcome in outcomes
            )

        asyncio.run(go())

    def test_hard_stop_cancels_instead_of_hanging(self, fault_runner):
        dataset = fault_runner.dataset("factbench")
        router = ShardedValidationService.from_runner(
            fault_runner,
            2,
            ServiceConfig(enable_cache=False, max_batch_size=1, time_scale=0.05),
        )
        requests = [ServiceRequest(fact, "dka", "gemma2:9b") for fact in dataset][:6]

        async def go():
            await router.start()
            tasks = [
                asyncio.create_task(router.submit(request)) for request in requests
            ]
            await asyncio.sleep(0.01)
            await asyncio.wait_for(router.stop(drain=False), timeout=2.0)
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)
            # The hard stop is explicit about abandonment: every in-flight
            # request fails with CancelledError, none blocks forever.
            assert all(
                isinstance(outcome, asyncio.CancelledError) for outcome in outcomes
            )

        asyncio.run(go())


# ------------------------------------------------------------- geo tier faults


class TestGeoTierFaults:
    """The async geo tier under faults: crash-resume, partition, restart."""

    def _fleet(self, seed: int = 3):
        import random

        from repro.kg import Triple

        rng = random.Random(seed)
        triples = sorted(
            {
                Triple(
                    f"entity{rng.randrange(20)}",
                    f"pred{rng.randrange(4)}",
                    f"entity{rng.randrange(20)}",
                )
                for _ in range(30)
            }
        )
        from repro.store import ShardedStore

        return ShardedStore.partition(triples, [], num_shards=2)

    def _write_batches(self, fleet, count: int):
        from repro.store import Mutation

        for index in range(count):
            fleet.apply(
                [Mutation.add_triple(f"GeoWrite{index}", "worksFor", f"Org{index}")]
            )

    def test_edge_crash_mid_drain_resumes_without_skip_or_double_apply(
        self, tmp_path
    ):
        """An edge dying mid-drain (some batches applied, the rest not)
        restarts from its *durable* watermark — its own store epochs — and
        the resumed drain applies exactly the missing suffix: every queued
        epoch lands exactly once, then digests prove convergence."""
        from repro.store import EdgeReplica
        from repro.store.geosync import GeoReplicator

        fleet = self._fleet()
        geo = GeoReplicator(fleet, queue_dir=str(tmp_path / "queues"))
        geo.add_edge("edge-0")
        self._write_batches(fleet, 6)

        applied_epochs = {0: [], 1: []}
        calls = 0

        def crashy(shard_index, epoch, batch):
            nonlocal calls
            calls += 1
            if calls > 2:
                raise RuntimeError("edge crashed mid-drain")
            landed = geo.edges["edge-0"].stores[shard_index].apply(batch).epoch
            applied_epochs[shard_index].append(epoch)
            return landed

        with pytest.raises(RuntimeError, match="crashed mid-drain"):
            geo.drain("edge-0", apply=crashy)
        vector_at_crash = geo.edges["edge-0"].applied_vector
        assert sum(len(v) for v in applied_epochs.values()) == 2

        # The crash-restart: persist the edge, reload it, re-attach.  Its
        # applied vector (the durable watermark) is exactly where it died.
        geo.edges["edge-0"].save(str(tmp_path / "edge"))
        restored = EdgeReplica.load("edge-0", str(tmp_path / "edge"), 2)
        assert restored.applied_vector == vector_at_crash
        geo.remove_edge("edge-0")
        geo.adopt_edge(restored)

        def recording(shard_index, epoch, batch):
            landed = restored.stores[shard_index].apply(batch).epoch
            applied_epochs[shard_index].append(epoch)
            return landed

        geo.drain("edge-0", apply=recording)
        # Exactly-once per epoch per shard, densely up to the primary head.
        for shard_index, primary in enumerate(fleet.shards):
            begin = geo.queues[shard_index].floor_epoch
            assert applied_epochs[shard_index] == list(
                range(begin + 1, primary.epoch + 1)
            )
        assert geo.verify_converged("edge-0") == fleet.state_digests(
            include_index=False
        )

    def test_primary_restart_preserves_queued_unshipped_batches(self, tmp_path):
        """Queued-but-unshipped batches and reported watermarks survive a
        primary restart: ``GeoReplicator.resume`` reloads the durable
        queue files and a lagging edge drains to convergence against the
        rebuilt primary."""
        from repro.store import EdgeReplica
        from repro.store.geosync import GeoReplicator

        queue_dir = str(tmp_path / "queues")
        fleet = self._fleet()
        geo = GeoReplicator(fleet, queue_dir=queue_dir)
        geo.add_edge("edge-0")
        self._write_batches(fleet, 5)
        pending_before = geo.depth("edge-0")
        assert pending_before == 5  # nothing drained yet
        watermark_before = geo.watermark_vector("edge-0")
        geo.edges["edge-0"].save(str(tmp_path / "edge"))
        geo.close()  # primary process dies

        rebuilt = fleet.replay_twin()  # restart: state from the logs
        resumed = GeoReplicator.resume(rebuilt, queue_dir)
        restored = EdgeReplica.load("edge-0", str(tmp_path / "edge"), 2)
        resumed.adopt_edge(restored)
        assert resumed.watermark_vector("edge-0") == watermark_before
        assert resumed.depth("edge-0") == pending_before
        assert resumed.drain("edge-0") == pending_before
        assert resumed.verify_converged("edge-0") == rebuilt.state_digests(
            include_index=False
        )

    def test_partitioned_edge_serves_stale_stamped_reads_and_sessions_route_around(
        self, fault_runner
    ):
        """A partitioned edge (drain loop stalled by an ``edge:{i}`` fault)
        keeps serving reads — epoch-stamped with visible staleness — while
        sessions whose writes it has not applied fall back to the primary
        instead of reading below their own writes."""
        from repro.chaos import FaultEvent, FaultInjector, FaultSchedule, FaultSpec
        from repro.store import Mutation

        router = ShardedValidationService.from_runner(
            fault_runner,
            2,
            ServiceConfig(time_scale=0.001),
            store=fault_runner.sharded_store("factbench", 2).replay_twin(),
            edges=2,
            drain_interval_s=0.005,
        )
        fact = fault_runner.dataset("factbench")[0]

        async def go():
            async with router:
                injector = FaultInjector(
                    FaultSchedule(
                        [
                            FaultEvent(
                                at_s=0.0,
                                target="edge:1",
                                fault=FaultSpec.parse("stall:30"),
                            )
                        ]
                    ),
                    clock=router.clock,
                )
                router.set_fault_injection(injector)
                injector.start()
                frozen = router.watermark_vector("edge-1")
                for index in range(4):
                    await router.apply_mutations(
                        [Mutation.add_triple(f"Partition{index}", "worksFor", "Org")],
                        session="writer",
                    )

                # A session with no writes reads from the partitioned edge:
                # answered locally, staleness visible, vector = edge state.
                stale = await router.submit(
                    ServiceRequest(fact, "dka", "gemma2:9b"),
                    session="reader",
                    region="edge-1",
                )
                # The writer's session floor is above the frozen watermark:
                # the router routes around the edge to the primary.
                fresh = await router.submit(
                    ServiceRequest(fact, "dka", "gemma2:9b"),
                    session="writer",
                    region="edge-1",
                )
                fallbacks = router.metrics.session_fallbacks
                return frozen, stale, fresh, fallbacks

        frozen, stale, fresh, fallbacks = asyncio.run(go())
        assert stale.outcome is RequestOutcome.COMPLETED
        assert stale.served_by == "edge-1"
        # Staleness is the *owning shard's* visible lag; the four writes
        # hash across both shards, so each shard trails by at least one.
        assert stale.staleness_epochs and stale.staleness_epochs >= 1
        assert stale.epoch_vector == frozen  # stamped with the edge's state
        assert fresh.outcome is RequestOutcome.COMPLETED
        assert fresh.served_by == "primary"
        assert all(
            served >= floor for served, floor in zip(fresh.epoch_vector, frozen)
        )
        assert fallbacks >= 1
