"""Tests for the benchmark configuration and runner."""

import pytest

from repro.benchmark import ExperimentConfig, PAPER_SCALE_CONFIG, QUICK_CONFIG


class TestConfig:
    def test_default_grid_models_include_commercial(self):
        config = ExperimentConfig()
        assert config.grid_models()[-1] == "gpt-4o-mini"
        assert len(config.grid_models()) == 5

    def test_commercial_can_be_excluded(self):
        config = ExperimentConfig(include_commercial_in_grid=False)
        assert "gpt-4o-mini" not in config.grid_models()

    def test_paper_scale_config_is_full_size(self):
        assert PAPER_SCALE_CONFIG.scale == 1.0
        assert PAPER_SCALE_CONFIG.max_facts_per_dataset is None
        assert PAPER_SCALE_CONFIG.documents_per_fact == 154

    def test_quick_config_is_small(self):
        assert QUICK_CONFIG.scale < 0.5

    def test_rag_config_propagates_serp_depth(self):
        config = ExperimentConfig(serp_results_per_query=33)
        assert config.rag_config().serp_results_per_query == 33


class TestRunner:
    def test_datasets_match_config(self, runner):
        datasets = runner.datasets()
        assert set(datasets) == set(runner.config.datasets)
        for dataset in datasets.values():
            assert len(dataset) <= runner.config.max_facts_per_dataset

    def test_dataset_unknown_name_raises(self, runner):
        with pytest.raises(KeyError):
            runner.dataset("wikidata")

    def test_dataset_cached(self, runner):
        assert runner.dataset("factbench") is runner.dataset("factbench")

    def test_corpus_and_search_api_cached(self, runner):
        assert runner.corpus("factbench") is runner.corpus("factbench")
        assert runner.search_api("factbench") is runner.search_api("factbench")

    def test_encoding_selection(self, runner):
        assert runner.encoding("yago").name == "yago"
        assert runner.encoding("factbench").name == "dbpedia"

    def test_build_strategy_unknown_method(self, runner):
        with pytest.raises(KeyError):
            runner.build_strategy("chain-of-thought", "factbench", runner.registry.get("gemma2:9b"))

    def test_run_is_cached(self, runner):
        first = runner.run("dka", "factbench", "gemma2:9b")
        second = runner.run("dka", "factbench", "gemma2:9b")
        assert first is second
        assert len(first) == len(runner.dataset("factbench"))

    def test_runs_for_returns_all_ensemble_models(self, runner):
        runs = runner.runs_for("dka", "factbench")
        assert set(runs) == set(runner.config.models)

    def test_consensus_and_alignment(self, runner):
        consensus = runner.consensus("dka", "factbench", judge="none")
        assert 0.0 <= consensus.tie_rate() <= 1.0
        alignment = runner.alignment("dka", "factbench")
        assert set(alignment) == set(runner.config.models)
        assert all(0.0 <= value <= 1.0 for value in alignment.values())

    def test_consensus_with_commercial_judge_resolves_ties(self, runner):
        plain = runner.consensus("dka", "factbench", judge="none")
        judged = runner.consensus("dka", "factbench", judge="commercial")
        unresolved = sum(1 for o in judged.outcomes if o.verdict.value == "tie")
        assert unresolved <= sum(1 for o in plain.outcomes if o.verdict.value == "tie")
        assert judged.judge.startswith("commercial:")

    def test_judge_selection_uses_upgrades(self, runner):
        name = runner._select_judge_model("dka", "cons-up")
        assert name in {"gemma2:27b", "qwen2.5:14b", "llama3.1:70b", "mistral-nemo:12b"}

    def test_build_rag_dataset_stats(self, runner):
        records, stats = runner.build_rag_dataset("factbench", max_facts=5)
        assert stats.num_facts == 5
        assert stats.avg_questions_per_fact >= 2
        assert set(records) <= {fact.fact_id for fact in runner.dataset("factbench")}
