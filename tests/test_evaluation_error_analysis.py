"""Tests for the E1–E6 error taxonomy and report formatting."""

import pytest

from repro.evaluation import (
    ERROR_CATEGORIES,
    ErrorAnalyzer,
    format_error_table,
    format_f1_table,
    format_table,
    format_time_table,
    unique_ratio,
)
from repro.evaluation.error_analysis import ErrorAnalysis, ErrorRecord
from repro.validation import DirectKnowledgeAssessment


class TestCategorizer:
    @pytest.fixture(scope="class")
    def analyzer(self):
        return ErrorAnalyzer()

    def test_missing_context_is_e1(self, analyzer):
        text = "The supplied context did not mention the asserted details about the entity."
        assert analyzer.categorize(text) == "E1"

    def test_relationship_is_e2(self, analyzer):
        text = "The marital status between the two individuals was assessed incorrectly."
        assert analyzer.categorize(text) == "E2"

    def test_role_is_e3(self, analyzer):
        text = "The person was linked to the wrong team and organization."
        assert analyzer.categorize(text) == "E3"

    def test_geographic_is_e4(self, analyzer):
        text = "The stated nationality conflicts with the reference information about the country."
        assert analyzer.categorize(text) == "E4"

    def test_genre_is_e5(self, analyzer):
        text = "The film was miscategorized under an incorrect genre."
        assert analyzer.categorize(text) == "E5"

    def test_identifier_is_e6(self, analyzer):
        text = "The award name and the year reported were inaccurate identifiers."
        assert analyzer.categorize(text) == "E6"

    def test_unmatched_text_still_categorized(self, analyzer):
        category = analyzer.categorize("Completely unrelated words about nothing specific.")
        assert category in ERROR_CATEGORIES

    def test_category_labels(self):
        assert "Geographic" in ErrorAnalyzer.category_label("E4")


class TestUniqueRatio:
    def test_unique_ratio(self):
        fact_models = {"f1": {"m1"}, "f2": {"m1", "m2"}, "f3": {"m3"}}
        assert unique_ratio(fact_models) == pytest.approx(0.67, abs=0.01)

    def test_unique_ratio_empty(self):
        assert unique_ratio({}) == 0.0


class TestErrorAnalysis:
    def test_counts_and_totals(self):
        analysis = ErrorAnalysis(dataset="d")
        analysis.records = [
            ErrorRecord("f1", "m1", "d", "dka", True, False, "x", "E4"),
            ErrorRecord("f2", "m1", "d", "dka", False, True, "x", "E2"),
            ErrorRecord("f1", "m2", "d", "dka", True, False, "x", "E4"),
        ]
        counts = analysis.counts_by_model()
        assert counts["m1"]["E4"] == 1 and counts["m1"]["E2"] == 1
        assert analysis.totals_by_model() == {"m1": 2, "m2": 1}
        ratios = analysis.unique_ratios()
        assert ratios["E2"] == 1.0
        assert ratios["E4"] == 0.0
        assert 0.0 <= ratios["total"] <= 1.0

    def test_analyze_run_produces_records_for_wrong_predictions(
        self, gemma, verbalizer, factbench_small
    ):
        dataset = factbench_small.sample(20, seed=4)
        run = DirectKnowledgeAssessment(gemma, verbalizer).validate_dataset(dataset)
        analyzer = ErrorAnalyzer()
        records = analyzer.analyze_run(run, dataset, gemma)
        wrong = [result for result in run.results if result.is_correct is False]
        assert len(records) == len(wrong)
        assert all(record.category in ERROR_CATEGORIES for record in records)
        assert all(record.explanation for record in records)


class TestReporting:
    def test_format_table_alignment(self):
        rendered = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]], title="T")
        lines = rendered.splitlines()
        assert lines[0] == "T"
        assert "2.50" in rendered

    def test_format_f1_table(self):
        table = {"ds": {"dka": {"m1": {"f1_true": 0.8, "f1_false": 0.3}}}}
        rendered = format_f1_table(table)
        assert "m1 F1(T)" in rendered and "0.80" in rendered

    def test_format_time_table(self):
        table = {"ds": {"rag": {"m1": 2.3}}}
        rendered = format_time_table(table)
        assert "2.30" in rendered

    def test_format_error_table(self):
        counts = {"ds": {"m1": {"E1": 1, "E4": 5}}}
        rendered = format_error_table(counts)
        assert "E4" in rendered and "5" in rendered
