"""Observability layer: registry, tracing, events, and fleet integration.

Covers the unified metrics registry (typed instruments, labels, exemplars,
Prometheus-style exposition and its parser), the seeded tracer (id
determinism, context propagation, head sampling, JSONL export), the span
trees the serving fleet produces for shed / mid-flight failover /
degraded-after-budget-exhaustion journeys on a :class:`VirtualClock`
(byte-identical across reruns), the structured event log, and the
:class:`TelemetryCollector` concurrency contract.
"""

from __future__ import annotations

import asyncio
import io
import json
import re
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmark import BenchmarkRunner, ExperimentConfig
from repro.chaos import FaultEvent, FaultInjector, FaultSchedule, FaultSpec
from repro.chaos.clock import VirtualClock
from repro.llm.telemetry import TelemetryCollector
from repro.obs import (
    EVENT_KINDS,
    SPAN_TAXONOMY,
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SHED,
    EventLog,
    MetricsRegistry,
    Observability,
    Tracer,
    maybe_span,
    parse_exposition,
    percentile,
    reexpose,
    render_exposition,
    render_spans,
    slowest_path,
)
from repro.service import (
    RequestOutcome,
    RetryPolicy,
    ServiceConfig,
    ServiceMetrics,
    ServiceRequest,
    ShardedValidationService,
    ValidationService,
)


# ------------------------------------------------------------------ fixtures


@pytest.fixture(scope="module")
def obs_runner():
    return BenchmarkRunner(
        ExperimentConfig(
            scale=0.03,
            max_facts_per_dataset=16,
            world_scale=0.15,
            methods=("dka",),
            datasets=("factbench",),
            models=("gemma2:9b",),
            include_commercial_in_grid=False,
            seed=11,
        )
    )


def _requests(runner, count=4):
    dataset = runner.dataset("factbench")
    return [ServiceRequest(fact, "dka", "gemma2:9b") for fact in dataset[:count]]


# ------------------------------------------------------------------ percentile


class TestPercentile:
    def test_empty_window_is_zero_not_an_error(self):
        assert percentile([], 50) == 0.0
        assert percentile([], 99) == 0.0

    def test_single_sample_short_window(self):
        assert percentile([3.0], 0) == 3.0
        assert percentile([3.0], 99) == 3.0

    def test_two_samples_interpolate(self):
        assert percentile([1.0, 2.0], 50) == 1.5
        assert percentile([10.0, 20.0], 25) == 12.5
        assert percentile([10.0, 20.0], 100) == 20.0

    def test_interpolation_matches_closest_ranks(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == 50.5
        assert percentile(values, 99) == pytest.approx(99.01)

    def test_unsorted_input_is_sorted_internally(self):
        assert percentile([5.0, 1.0, 3.0], 50) == 3.0

    def test_out_of_range_quantiles_raise(self):
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)
        with pytest.raises(ValueError):
            percentile([1.0], 100.1)


# ------------------------------------------------------------------ registry


class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        requests = registry.counter("requests_total", "Requests.", ("outcome",))
        requests.labels(outcome="ok").inc()
        requests.labels(outcome="ok").inc(2)
        requests.labels(outcome="bad").inc()
        assert requests.labels(outcome="ok").value == 3
        depth = registry.gauge("queue_depth", "Depth.")
        depth.set(7)
        depth.inc()
        depth.dec(3)
        assert depth.value == 5
        latency = registry.histogram("latency_seconds", "Latency.", window=8)
        for value in (0.002, 0.004, 0.5):
            latency.observe(value)
        assert latency.window() == [0.002, 0.004, 0.5]
        assert latency.percentile(50) == 0.004

    def test_getters_are_idempotent_but_conflicts_raise(self):
        registry = MetricsRegistry()
        first = registry.counter("a_total", "A.")
        assert registry.counter("a_total", "A.") is first
        with pytest.raises(ValueError):
            registry.gauge("a_total", "A as a gauge.")
        with pytest.raises(ValueError):
            registry.counter("a_total", "A.", ("shard",))  # labelnames differ

    def test_histogram_window_is_bounded(self):
        registry = MetricsRegistry()
        latency = registry.histogram("latency_seconds", "Latency.", window=4)
        for value in range(10):
            latency.observe(float(value))
        assert latency.window() == [6.0, 7.0, 8.0, 9.0]

    def test_reset_clears_every_instrument(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "C.")
        gauge = registry.gauge("g", "G.")
        histogram = registry.histogram("h_seconds", "H.")
        counter.inc(5)
        gauge.set(2)
        histogram.observe(1.0)
        registry.reset()
        assert counter.value == 0
        assert gauge.value == 0
        assert histogram.window() == []

    def test_exposition_renders_and_parses_round_trip(self):
        registry = MetricsRegistry()
        requests = registry.counter("requests_total", "Requests.", ("outcome",))
        requests.labels(outcome="ok").inc(3)
        registry.gauge("depth", "Depth.").set(2)
        latency = registry.histogram("latency_seconds", "Latency.")
        latency.observe(0.003)
        text = registry.exposition()
        parsed = parse_exposition(text)
        assert parsed["requests_total"]["kind"] == "counter"
        samples = {
            (name, labels): value
            for name, labels, value in parsed["requests_total"]["samples"]
        }
        assert samples[("requests_total", '{outcome="ok"}')] == 3
        assert parsed["depth"]["kind"] == "gauge"
        assert parsed["latency_seconds"]["kind"] == "histogram"

    def test_parse_rejects_samples_without_type(self):
        with pytest.raises(ValueError):
            parse_exposition("mystery_metric 3\n")

    def test_exemplars_attach_to_buckets_and_render(self):
        registry = MetricsRegistry()
        latency = registry.histogram("latency_seconds", "Latency.")
        latency.observe(0.003, exemplar="aaaa0000aaaa0000")
        latency.observe(0.004, exemplar="bbbb1111bbbb1111")
        exemplars = dict(latency.exemplars())
        assert "bbbb1111bbbb1111" in exemplars.values()
        text = render_exposition(registry.collect())
        assert 'trace_id="bbbb1111bbbb1111"' in text
        assert parse_exposition(text)  # exemplar syntax still parses

    def test_collect_with_extra_labels_merges_fleet_expositions(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("served_total", "Served.").inc(1)
        b.counter("served_total", "Served.").inc(2)
        families = a.collect({"replica": "0"}) + b.collect({"replica": "1"})
        text = render_exposition(families)
        assert 'served_total{replica="0"} 1' in text
        assert 'served_total{replica="1"} 2' in text
        # One family header despite two source registries.
        assert text.count("# TYPE served_total counter") == 1

    def test_service_metrics_snapshot_derives_from_registry(self):
        metrics = ServiceMetrics(window=16)
        metrics.start()
        metrics.observe_completion(0.004, trace_id="cafe0000cafe0000")
        metrics.observe_shed()
        metrics.observe_cache(True)
        metrics.observe_batch(2)
        snapshot = metrics.snapshot()
        assert snapshot.completed == 1
        assert snapshot.rejected == 1
        assert snapshot.cache_hits == 1
        assert any(trace == "cafe0000cafe0000" for _, trace in snapshot.exemplars)
        registry_text = metrics.exposition()
        parsed = parse_exposition(registry_text)
        samples = {
            (name, labels): value
            for name, labels, value in parsed["service_requests_total"]["samples"]
        }
        assert samples[("service_requests_total", '{outcome="completed"}')] == 1


# ------------------------------------------------------------------ tracer


class TestTracer:
    def test_same_seed_mints_identical_ids(self):
        clock_a, clock_b = VirtualClock(), VirtualClock()
        a, b = Tracer(clock_a, seed=7), Tracer(clock_b, seed=7)
        for tracer in (a, b):
            with tracer.span("frontend.request", "frontend"):
                pass
        assert a.trace_ids() == b.trace_ids()

    def test_nested_spans_parent_through_the_contextvar(self):
        tracer = Tracer(VirtualClock(), seed=1)
        with tracer.span("router.route", "shard:0") as root:
            with tracer.span("replica.call", "shard:0/replica:0") as child:
                assert child.parent_id == root.span_id
                assert child.trace_id == root.trace_id

    def test_ambient_context_crosses_wait_for(self):
        tracer = Tracer(VirtualClock(), seed=1)

        async def go():
            async def leaf():
                with tracer.span("service.submit", "service") as span:
                    return span

            with tracer.span("router.route", "shard:0") as root:
                inner = await asyncio.wait_for(leaf(), timeout=1.0)
            return root, inner

        root, inner = asyncio.run(go())
        assert inner.parent_id == root.span_id

    def test_exception_marks_failed_and_propagates(self):
        tracer = Tracer(VirtualClock(), seed=1)
        with pytest.raises(RuntimeError):
            with tracer.span("worker.execute", "w"):
                raise RuntimeError("boom")
        [trace_id] = tracer.trace_ids()
        [span] = tracer.spans(trace_id)
        assert span.status == STATUS_FAILED
        assert span.attributes["error"] == "RuntimeError"

    def test_head_sampling_drops_ok_keeps_bad(self):
        tracer = Tracer(VirtualClock(), seed=3, sample_rate=0.0)
        for _ in range(5):
            with tracer.span("frontend.request", "frontend"):
                pass
        assert tracer.trace_ids() == []
        assert tracer.sampled_out == 5
        with tracer.span("frontend.request", "frontend") as span:
            span.status = STATUS_SHED
        assert len(tracer.trace_ids()) == 1  # bad outcomes always commit

    def test_sample_rate_does_not_shift_the_id_stream(self):
        ids = []
        for rate in (1.0, 0.5):
            tracer = Tracer(VirtualClock(), seed=9, sample_rate=rate)
            with tracer.span("frontend.request", "frontend") as span:
                span.status = STATUS_FAILED  # always kept
            ids.append(tracer.trace_ids())
        assert ids[0] == ids[1]

    def test_inject_extract_round_trip_and_malformed(self):
        tracer = Tracer(VirtualClock(), seed=2)
        with tracer.span("frontend.request", "frontend") as span:
            carrier = tracer.inject()
        context = Tracer.extract(carrier)
        assert context is not None
        assert context.trace_id == span.trace_id
        assert Tracer.extract(None) is None
        assert Tracer.extract({"trace_id": "zz", "span_id": "11"}) is None
        assert Tracer.extract("not a mapping") is None

    def test_remote_parent_anchors_a_local_subtree(self):
        upstream = Tracer(VirtualClock(), seed=4)
        downstream = Tracer(VirtualClock(), seed=5)
        with upstream.span("client.request", "client"):
            carrier = upstream.inject()
        remote = Tracer.extract(carrier)
        with downstream.span("frontend.request", "frontend", parent=remote) as span:
            assert span.trace_id == remote.trace_id
            assert span.parent_id == remote.span_id
        assert downstream.trace_ids() == [remote.trace_id]

    def test_record_span_attributes_shared_work(self):
        tracer = Tracer(VirtualClock(), seed=6)
        with tracer.span("worker.execute", "w") as parent:
            tracer.record_span(
                "store.read", "store", parent, 0.0, 0.5, STATUS_OK, facts=3
            )
        [trace_id] = tracer.trace_ids()
        spans = tracer.spans(trace_id)
        read = next(span for span in spans if span.name == "store.read")
        assert read.duration_s == 0.5
        assert read.attributes["facts"] == 3

    def test_export_jsonl_sorted_keys_and_count(self):
        tracer = Tracer(VirtualClock(), seed=8)
        with tracer.span("frontend.request", "frontend"):
            with tracer.span("service.submit", "service"):
                pass
        sink = io.StringIO()
        assert tracer.export_jsonl(sink) == 2
        lines = sink.getvalue().strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            record = json.loads(line)
            assert list(record) == sorted(record)
            assert record["name"] in SPAN_TAXONOMY

    def test_render_spans_tree_shape(self):
        tracer = Tracer(VirtualClock(), seed=10)
        with tracer.span("router.route", "shard:0"):
            with tracer.span("replica.call", "shard:0/replica:0"):
                pass
        [trace_id] = tracer.trace_ids()
        tree = tracer.render_tree(trace_id)
        assert tree.splitlines()[0].startswith(f"trace {trace_id}")
        assert "└─ router.route" in tree
        assert "   └─ replica.call" in tree
        assert render_spans([]) == "(empty trace)"

    def test_slowest_path_follows_max_duration_children(self):
        clock = VirtualClock()
        tracer = Tracer(clock, seed=11)
        root = tracer.start_span("router.route", "shard:0")
        fast = tracer.start_span("replica.call", "r0", parent=root)
        tracer.end_span(fast)  # zero duration
        slow = tracer.start_span("replica.call", "r1", parent=root)
        clock.advance(0.5)
        tracer.end_span(slow)
        tracer.end_span(root)
        [trace_id] = tracer.trace_ids()
        assert slowest_path(tracer.spans(trace_id)) == "router.route>replica.call"
        assert slowest_path([]) == ""

    def test_maybe_span_none_tracer_is_a_noop(self):
        with maybe_span(None, "router.route", "shard:0") as span:
            assert span is None

    def test_max_spans_per_trace_bounds_memory_and_counts_drops(self):
        tracer = Tracer(VirtualClock(), seed=1, max_spans_per_trace=3)
        with tracer.span("router.route", "shard:0"):
            for _ in range(5):
                with tracer.span("replica.call", "shard:0/replica:0"):
                    pass
        [trace_id] = tracer.trace_ids()
        assert len(tracer.spans(trace_id)) == 3, "root + first two children"
        assert tracer.spans_dropped == 3
        with pytest.raises(ValueError, match="max_spans_per_trace"):
            Tracer(VirtualClock(), seed=1, max_spans_per_trace=0)


# ------------------------------------------------------------------ events


class TestEventLog:
    def test_emit_counts_and_order(self):
        clock = VirtualClock()
        log = EventLog(clock)
        log.emit("replica_killed", "shard:0/replica:1")
        clock.advance(0.5)
        log.emit("failover", "shard:0", faulted_attempts=1)
        events = log.events()
        assert [event.kind for event in events] == ["replica_killed", "failover"]
        assert events[0].ts_s == 0.0 and events[1].ts_s == 0.5
        assert events[1].attributes == {"faulted_attempts": 1}
        assert log.counts() == {"failover": 1, "replica_killed": 1}
        assert all(kind in EVENT_KINDS for kind in log.counts())

    def test_bounded_capacity_drops_oldest(self):
        log = EventLog(VirtualClock(), capacity=2)
        for index in range(4):
            log.emit("failover", f"shard:{index}")
        assert [event.target for event in log.events()] == ["shard:2", "shard:3"]
        assert len(log) == 2

    def test_dropped_counter_accounts_for_every_eviction(self):
        log = EventLog(VirtualClock(), capacity=2)
        assert log.dropped == 0
        for index in range(5):
            log.emit("failover", f"shard:{index}")
        assert log.dropped == 3
        assert log.dropped + len(log) == 5, "emitted == retained + dropped"
        # seq numbers stay globally monotonic across evictions.
        assert [event.seq for event in log.events()] == [3, 4]
        with pytest.raises(ValueError):
            EventLog(VirtualClock(), capacity=0)

    def test_export_jsonl_and_table(self):
        log = EventLog(VirtualClock())
        log.emit("quiesce_start", "service", pending=3)
        sink = io.StringIO()
        assert log.export_jsonl(sink) == 1
        record = json.loads(sink.getvalue())
        assert record["kind"] == "quiesce_start"
        assert "quiesce_start" in log.format_table()


# ------------------------------------------------------- telemetry threading


class TestTelemetryConcurrency:
    def test_record_call_is_thread_safe_under_contention(self):
        collector = TelemetryCollector()
        threads, per_thread = 8, 250
        start = threading.Barrier(threads)

        def hammer(worker: int) -> None:
            start.wait()
            for index in range(per_thread):
                collector.record_call(
                    model=f"m{worker % 2}",
                    task="serve/dka",
                    prompt_tokens=1,
                    completion_tokens=1,
                    latency_seconds=0.001,
                )

        workers = [
            threading.Thread(target=hammer, args=(index,)) for index in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        records = collector.records(task="serve/dka")
        assert len(records) == threads * per_thread
        assert sum(record.prompt_tokens for record in records) == threads * per_thread


# --------------------------------------------------------- fleet span trees


def _names(spans):
    return sorted(span.name for span in spans)


def _connected(spans):
    """Every span except one root chains back to that root."""
    by_id = {span.span_id: span for span in spans}
    roots = [span for span in spans if span.parent_id not in by_id]
    return len(roots) == 1


class TestFleetSpanTrees:
    def _router(self, runner, clock, replicas=2, retry_policy=None, **kwargs):
        return ShardedValidationService.from_runner(
            runner,
            1,
            ServiceConfig(enable_cache=False),
            replicas=replicas,
            retry_policy=retry_policy,
            clock=clock,
            **kwargs,
        )

    def test_shed_request_produces_a_shed_span_despite_sampling(self, obs_runner):
        clock = VirtualClock()
        obs = Observability.for_clock(clock, seed=42, sample_rate=0.0)

        async def go():
            service = ValidationService.from_runner(
                obs_runner, ServiceConfig(enable_cache=False, queue_depth=1)
            )
            service.set_observability(obs.tracer, obs.events)
            requests = _requests(obs_runner, 4)
            async with service:
                # Fill the single admission slot, then submit over budget.
                tasks = [
                    asyncio.get_running_loop().create_task(service.submit(request))
                    for request in requests
                ]
                return await asyncio.gather(*tasks)

        responses = asyncio.run(go())
        shed = [r for r in responses if r.outcome is RequestOutcome.REJECTED]
        assert shed, "queue_depth=1 under 4 concurrent submits must shed"
        # sample_rate=0 drops every OK trace; the SHED ones always commit.
        committed = obs.tracer.traces()
        assert committed, "shed traces must survive head sampling"
        for spans in committed.values():
            assert any(span.status == STATUS_SHED for span in spans)
        for response in shed:
            assert response.trace_id in committed

    def test_mid_flight_failover_tree_shows_both_replica_attempts(self, obs_runner):
        clock = VirtualClock()
        obs = Observability.for_clock(clock, seed=42)
        schedule = FaultSchedule(
            [
                FaultEvent(
                    at_s=0.0,
                    target="shard:0/replica:0",
                    fault=FaultSpec.parse("error:1.0"),
                    clear_at_s=None,
                )
            ]
        )

        async def go():
            router = self._router(obs_runner, clock)
            router.set_observability(obs)
            injector = FaultInjector(schedule, clock=clock, seed=1)
            router.set_fault_injection(injector)
            async with router:
                injector.start()
                return await router.submit(_requests(obs_runner, 1)[0])

        response = asyncio.run(go())
        assert response.outcome is RequestOutcome.COMPLETED
        spans = obs.tracer.spans(response.trace_id)
        assert _connected(spans)
        calls = [span for span in spans if span.name == "replica.call"]
        assert len(calls) == 2, "one faulted attempt + the rescuing sibling"
        statuses = sorted(span.status for span in calls)
        assert statuses == [STATUS_FAILED, STATUS_OK]
        root = next(span for span in spans if span.parent_id is None)
        assert root.name == "router.route" and root.status == STATUS_OK
        assert any(span.name == "worker.execute" for span in spans)
        # The metrics exemplar links back to this same trace.
        assert obs.events.counts().get("failover") == 1

    def test_degraded_after_budget_exhaustion_tags_staleness(self, obs_runner):
        clock = VirtualClock()
        obs = Observability.for_clock(clock, seed=42)
        policy = RetryPolicy(
            max_attempts=2, base_backoff_s=0.0, max_backoff_s=0.0, jitter=0.0
        )
        schedule = FaultSchedule(
            [FaultEvent(at_s=0.0, target="shard:0", fault=FaultSpec.parse("error:1.0"))]
        )
        request = _requests(obs_runner, 1)[0]

        async def go():
            router = self._router(obs_runner, clock, retry_policy=policy)
            router.set_observability(obs)
            async with router:
                warm = await router.submit(request)
                injector = FaultInjector(schedule, clock=clock, seed=1)
                router.set_fault_injection(injector)
                injector.start()
                dark = await router.submit(request)
                return warm, dark

        warm, dark = asyncio.run(go())
        assert warm.outcome is RequestOutcome.COMPLETED
        assert dark.outcome is RequestOutcome.DEGRADED
        spans = obs.tracer.spans(dark.trace_id)
        assert _connected(spans)
        root = next(span for span in spans if span.parent_id is None)
        assert root.status == STATUS_DEGRADED
        assert root.attributes["stale_epoch"] == dark.stale_epoch
        assert root.attributes["staleness_epochs"] >= 0
        attempts = [span for span in spans if span.name == "router.attempt"]
        assert len(attempts) == policy.max_attempts
        assert all(span.status == STATUS_FAILED for span in attempts)
        assert obs.events.counts().get("budget_exhausted") == 1

    def test_replica_kill_emits_event_and_unhealthy_transition(self, obs_runner):
        clock = VirtualClock()
        obs = Observability.for_clock(clock, seed=42)

        async def go():
            router = self._router(obs_runner, clock)
            router.set_observability(obs)
            async with router:
                await router.kill_replica(0, 1)
                return await router.submit(_requests(obs_runner, 1)[0])

        response = asyncio.run(go())
        assert response.outcome is RequestOutcome.COMPLETED
        assert obs.events.counts().get("replica_killed") == 1

    def test_span_trees_are_byte_identical_across_reruns(self, obs_runner):
        def run_once() -> str:
            clock = VirtualClock()
            obs = Observability.for_clock(clock, seed=7)
            schedule = FaultSchedule(
                [
                    FaultEvent(
                        at_s=0.0,
                        target="shard:0/replica:0",
                        fault=FaultSpec.parse("error:1.0"),
                    )
                ]
            )

            async def go():
                router = self._router(obs_runner, clock)
                router.set_observability(obs)
                injector = FaultInjector(schedule, clock=clock, seed=1)
                router.set_fault_injection(injector)
                async with router:
                    injector.start()
                    for request in _requests(obs_runner, 4):
                        await router.submit(request)

            asyncio.run(go())
            sink = io.StringIO()
            obs.tracer.export_jsonl(sink)
            events = io.StringIO()
            obs.events.export_jsonl(events)
            return sink.getvalue() + "\n---\n" + events.getvalue()

        first, second = run_once(), run_once()
        assert first == second
        assert first.strip(), "the run must actually produce spans"

    def test_store_apply_and_ship_spans_on_the_ingest_path(self, obs_runner):
        from repro.store import Mutation
        from repro.retrieval.corpus import Document

        clock = VirtualClock()
        obs = Observability.for_clock(clock, seed=13)
        store = obs_runner.sharded_store("factbench", 1).replay_twin()

        async def go():
            router = ShardedValidationService.from_runner(
                obs_runner,
                1,
                ServiceConfig(enable_cache=False),
                store=store,
                replicas=2,
                clock=clock,
            )
            router.set_observability(obs)
            async with router:
                document = Document(
                    doc_id="obs-ingest-0",
                    url="https://obs.example/0",
                    title="Obs ingest",
                    text="Fresh evidence.",
                    source="obs.example",
                    kind="news",
                )
                await router.apply_mutations([Mutation.add_document(document)])

        asyncio.run(go())
        spans = [
            span for trace in obs.tracer.traces().values() for span in trace
        ]
        # Each live replica applies its own store copy: one apply span each.
        applies = [span for span in spans if span.name == "store.apply"]
        assert len(applies) == 2
        assert all(span.attributes["ops"] == 1 for span in applies)
        counts = obs.events.counts()
        assert counts.get("quiesce_start") == 2  # both replicas gated
        assert counts.get("quiesce_end") == 2

    def test_store_ship_span_on_replica_group_log_shipping(self, obs_runner):
        from repro.store import Mutation
        from repro.retrieval.corpus import Document

        obs = Observability.for_clock(VirtualClock(), seed=17)
        sharded = obs_runner.sharded_store("factbench", 1).replay_twin()
        group = sharded.replicate(2)[0]
        group.tracer = obs.tracer
        document = Document(
            doc_id="obs-ship-0",
            url="https://obs.example/ship",
            title="Obs ship",
            text="Shipped evidence.",
            source="obs.example",
            kind="news",
        )
        group.apply([Mutation.add_document(document)])
        spans = [
            span for trace in obs.tracer.traces().values() for span in trace
        ]
        ships = [span for span in spans if span.name == "store.ship"]
        assert len(ships) == 1  # primary applies, one replica receives the ship
        assert ships[0].attributes["ops"] == 1
        assert ships[0].attributes["epoch"] == group.epoch


# ----------------------------------------------------------- chaos run table


class TestChaosTraceColumns:
    def test_run_table_gains_trace_derived_timing_columns(self, obs_runner):
        from repro.chaos import ScenarioRunner, load_scenario
        from repro.chaos.scenario import RunTable

        scenario = load_scenario(
            {
                "name": "obs-columns",
                "seed": 23,
                "dataset": "factbench",
                "methods": ["dka"],
                "models": ["gemma2:9b"],
                "requests": 24,
                "concurrency": 4,
                "service": {"time_scale": 0.001, "enable_cache": False},
                "matrix": {
                    "topology": [{"shards": 1, "replicas": 2}],
                    "traffic": [{"shape": "steady"}],
                    "faults": [
                        {
                            "name": "kill-one",
                            "schedule": [
                                {
                                    "at_s": 0.0,
                                    "target": "shard:0/replica:1",
                                    "fault": "kill",
                                }
                            ],
                        }
                    ],
                },
                "invariants": {"max_failed": 0, "verdict_parity": True},
            }
        )
        table = ScenarioRunner(obs_runner, scenario).run()
        assert table.ok

        assert "slowest_path" in RunTable.TIMING_COLUMNS
        assert "worst_trace" in RunTable.TIMING_COLUMNS
        for column in ("slowest_path", "worst_trace"):
            assert column not in RunTable.DETERMINISTIC_COLUMNS

        rows = table.rows(include_timings=True)
        for row in rows:
            # Every cell served traffic, so every cell has a worst trace
            # (a 16-hex exemplar id) and a root-to-leaf slowest path.
            assert re.fullmatch(r"[0-9a-f]{16}", row["worst_trace"])
            assert row["slowest_path"].startswith("router.route")
            assert ">" in row["slowest_path"]
        # The deterministic CSV view stays free of trace-derived columns.
        deterministic = table.csv(include_timings=False)
        assert "slowest_path" not in deterministic
        assert "worst_trace" not in deterministic
        # The kill cell's event log reached the cell result.
        killed = next(cell for cell in table.cells if not cell.reference)
        assert killed.event_counts.get("replica_killed") == 1


# --------------------------------------------------------------- end to end


class TestFrontendTracing:
    def test_tcp_request_against_killed_replica_yields_one_connected_tree(
        self, obs_runner
    ):
        """The PR's acceptance journey: a 2x2 fleet, one replica dying
        mid-flight, one TCP request — a single connected span tree from
        frontend root through router, both replica attempts, worker, and
        store, with the trace id in the reply."""
        from repro.service import TCPValidationFrontend

        obs = Observability.for_clock(seed=42)
        dataset = obs_runner.dataset("factbench")
        fact = dataset[0]

        async def go():
            router = ShardedValidationService.from_runner(
                obs_runner,
                2,
                ServiceConfig(enable_cache=False),
                replicas=2,
            )
            async with router:
                frontend = TCPValidationFrontend(router, {"factbench": dataset})
                frontend.set_observability(obs)
                async with frontend:
                    shard = router.shard_for(
                        ServiceRequest(fact, "dka", "gemma2:9b")
                    )
                    # The replica the balancer picks first dies mid-call
                    # (an injected error — a pre-kill would leave the
                    # rotation before any attempt), so the request's first
                    # attempt fails over to the sibling mid-flight.
                    # Peek the balancer's next pick without perturbing its
                    # round-robin state (the order call advances it).
                    rr = router._rr[shard]
                    victim = router._replica_order(shard)[0]
                    router._rr[shard] = rr
                    injector = FaultInjector(
                        FaultSchedule(
                            [
                                FaultEvent(
                                    at_s=0.0,
                                    target=f"shard:{shard}/replica:{victim}",
                                    fault=FaultSpec.parse("error:1.0"),
                                )
                            ]
                        ),
                        clock=router.clock,
                        seed=1,
                    )
                    router.set_fault_injection(injector)
                    injector.start()
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", frontend.port
                    )
                    writer.write(
                        json.dumps(
                            {
                                "dataset": "factbench",
                                "fact_id": fact.fact_id,
                                "method": "dka",
                                "model": "gemma2:9b",
                            }
                        ).encode()
                        + b"\n"
                    )
                    await writer.drain()
                    reply = json.loads(await reader.readline())
                    writer.write(
                        json.dumps({"cmd": "metrics", "format": "exposition"}).encode()
                        + b"\n"
                    )
                    await writer.drain()
                    exposition = json.loads(await reader.readline())
                    writer.close()
                    await writer.wait_closed()
                    return reply, exposition

        reply, exposition = asyncio.run(go())
        assert reply["outcome"] == "completed"
        trace_id = reply["trace_id"]
        spans = obs.tracer.spans(trace_id)
        assert _connected(spans)
        names = [span.name for span in spans]
        root = next(span for span in spans if span.parent_id is None)
        assert root.name == "frontend.request"
        assert "router.route" in names
        assert names.count("replica.call") == 2, "killed attempt + live sibling"
        assert "service.submit" in names
        assert "worker.execute" in names
        assert "store.read" in names
        assert every_name_in_taxonomy(names)
        # The exposition command rendered the unified fleet registry.
        parsed = parse_exposition(exposition["exposition"])
        assert "service_requests_total" in parsed
        assert "router_failovers_total" in parsed

    def test_wire_trace_context_reparents_the_frontend_span(self, obs_runner):
        from repro.service import TCPValidationFrontend

        obs = Observability.for_clock(seed=42)
        client = Tracer(VirtualClock(), seed=99)
        dataset = obs_runner.dataset("factbench")
        fact = dataset[0]

        async def go():
            service = ValidationService.from_runner(
                obs_runner, ServiceConfig(enable_cache=False)
            )
            async with service:
                frontend = TCPValidationFrontend(service, {"factbench": dataset})
                frontend.set_observability(obs)
                async with frontend:
                    with client.span("client.request", "client"):
                        carrier = client.inject()
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", frontend.port
                    )
                    writer.write(
                        json.dumps(
                            {
                                "dataset": "factbench",
                                "fact_id": fact.fact_id,
                                "method": "dka",
                                "model": "gemma2:9b",
                                "trace": carrier,
                            }
                        ).encode()
                        + b"\n"
                    )
                    await writer.drain()
                    reply = json.loads(await reader.readline())
                    writer.close()
                    await writer.wait_closed()
                    return reply, carrier

        reply, carrier = asyncio.run(go())
        assert reply["trace_id"] == carrier["trace_id"]
        spans = obs.tracer.spans(carrier["trace_id"])
        root = next(span for span in spans if span.name == "frontend.request")
        assert root.parent_id == carrier["span_id"]


def every_name_in_taxonomy(names) -> bool:
    return all(name in SPAN_TAXONOMY for name in names)


# ----------------------------------------------- exposition round-trip property


@st.composite
def _registries(draw):
    """A registry with a drawn mix of counters, gauges, histograms,
    label values, and exemplars — plus optional fleet extra-labels."""
    registry = MetricsRegistry()
    outcomes = draw(
        st.lists(
            st.from_regex(r"[a-z][a-z0-9_]{0,7}", fullmatch=True),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    counter = registry.counter("req_total", "Requests.", ("outcome",))
    for outcome in outcomes:
        counter.labels(outcome=outcome).inc(
            draw(st.floats(min_value=0.0, max_value=1e12, allow_nan=False))
        )
    if draw(st.booleans()):
        registry.gauge("depth", "Depth.").set(
            draw(
                st.floats(
                    min_value=-1e12,
                    max_value=1e12,
                    allow_nan=False,
                    allow_infinity=False,
                )
            )
        )
    histogram = registry.histogram("lat_seconds", "Latency.")
    for value in draw(
        st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=6)
    ):
        histogram.observe(
            value,
            exemplar=draw(
                st.one_of(st.none(), st.from_regex(r"[0-9a-f]{16}", fullmatch=True))
            ),
        )
    extra = draw(
        st.one_of(
            st.none(),
            st.fixed_dictionaries(
                {
                    "shard": st.from_regex(r"[0-9]{1,2}", fullmatch=True),
                    "replica": st.from_regex(r"[0-9]{1,2}", fullmatch=True),
                }
            ),
        )
    )
    return registry, extra


class TestExpositionRoundTripProperty:
    @settings(max_examples=60, deadline=None)
    @given(_registries())
    def test_expose_parse_reexpose_is_byte_identical(self, drawn):
        """``reexpose(parse_exposition(text)) == text`` for every family
        kind, label set, sample value, and exemplar the registry can
        render — the property the chaos boundary relies on when it
        ingests fleet expositions."""
        registry, extra = drawn
        text = render_exposition(registry.collect(extra or {}))
        parsed = parse_exposition(text)
        assert reexpose(parsed) == text

    def test_round_trip_preserves_help_exemplars_and_inf_bounds(self):
        registry = MetricsRegistry()
        latency = registry.histogram("lat_seconds", "Latency seconds.")
        latency.observe(0.003, exemplar="cafe0000cafe0000")
        registry.counter("plain_total", "Plain.").inc(2)
        text = render_exposition(registry.collect({"replica": "1"}))
        parsed = parse_exposition(text)
        assert parsed["lat_seconds"]["help"] == "Latency seconds."
        exemplars = [e for e in parsed["lat_seconds"]["exemplars"] if e is not None]
        assert exemplars[0][0] == "cafe0000cafe0000"
        assert 'le="+Inf"' in text
        assert reexpose(parsed) == text


# ------------------------------------------- frontend scrape-while-serving


class TestFrontendMetricsConcurrency:
    def test_concurrent_scrapes_are_untorn_and_monotonic(self, obs_runner):
        """Two clients hammer the ``metrics`` exposition verb while a
        third streams validation requests through a 2x2 fleet.  Every
        scrape must parse under the strict parser (a torn or interleaved
        exposition raises), re-expose byte-identically, and read
        monotonically non-decreasing completion counters."""
        from repro.service import TCPValidationFrontend

        dataset = obs_runner.dataset("factbench")
        facts = list(dataset[:6])

        async def request_client(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            replies = []
            for fact in facts:
                writer.write(
                    json.dumps(
                        {
                            "dataset": "factbench",
                            "fact_id": fact.fact_id,
                            "method": "dka",
                            "model": "gemma2:9b",
                        }
                    ).encode()
                    + b"\n"
                )
                await writer.drain()
                replies.append(json.loads(await reader.readline()))
            writer.close()
            await writer.wait_closed()
            return replies

        async def scrape_client(port, count):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            texts = []
            for _ in range(count):
                writer.write(b'{"cmd": "metrics", "format": "exposition"}\n')
                await writer.drain()
                texts.append(json.loads(await reader.readline())["exposition"])
                await asyncio.sleep(0)
            writer.close()
            await writer.wait_closed()
            return texts

        async def go():
            router = ShardedValidationService.from_runner(
                obs_runner, 2, ServiceConfig(enable_cache=False), replicas=2
            )
            async with router:
                frontend = TCPValidationFrontend(router, {"factbench": dataset})
                async with frontend:
                    return await asyncio.gather(
                        request_client(frontend.port),
                        scrape_client(frontend.port, 8),
                        scrape_client(frontend.port, 8),
                    )

        replies, *scrape_streams = asyncio.run(go())
        assert [reply["outcome"] for reply in replies] == ["completed"] * len(facts)
        for texts in scrape_streams:
            previous = 0.0
            for text in texts:
                parsed = parse_exposition(text)  # strict: torn output raises
                assert reexpose(parsed) == text
                family = parsed.get("service_requests_total")
                completed = sum(
                    value
                    for _, labels, value in (family["samples"] if family else [])
                    if 'outcome="completed"' in labels
                )
                assert 0.0 <= completed <= float(len(facts))
                assert completed >= previous, "counters never run backwards"
                previous = completed
