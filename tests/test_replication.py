"""Replica groups and the replicated router: log shipping, fan-out, failover.

Store layer: :class:`ReplicaGroup` keeps R copies byte-identical by
shipping every batch primary-first, rejects invalid batches before any
copy applies, and detects out-of-band divergence.

Service layer: the router balances single-fact reads across a shard's
replicas, reroutes around raising / stalling / killed replicas without
surfacing ``FAILED`` while a sibling lives, re-admits recovered replicas
via health probes, and ships ingests to every replica in lockstep.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.benchmark import BenchmarkRunner, ExperimentConfig
from repro.kg import Triple
from repro.retrieval.corpus import Document
from repro.service import (
    RequestOutcome,
    ServiceConfig,
    ServiceRequest,
    ShardedValidationService,
    ValidationService,
)
from repro.store import (
    Mutation,
    ReplicaDivergedError,
    ReplicaGroup,
    ShardedStore,
    VersionedKnowledgeStore,
)
from repro.validation.base import ValidationResult, ValidationStrategy, Verdict


@pytest.fixture(scope="module")
def replica_runner():
    return BenchmarkRunner(
        ExperimentConfig(
            scale=0.03,
            max_facts_per_dataset=16,
            world_scale=0.15,
            methods=("dka",),
            datasets=("factbench",),
            models=("gemma2:9b",),
            include_commercial_in_grid=False,
            seed=11,
        )
    )


def _store(name: str = "primary") -> VersionedKnowledgeStore:
    return VersionedKnowledgeStore.bootstrap(
        triples=[
            Triple("Ada", "worksFor", "Acme"),
            Triple("Acme", "locatedIn", "Zurich"),
        ],
        documents=[
            Document(
                doc_id="d1",
                url="https://corpus.example/d1",
                title="Ada dossier",
                text="Ada works for Acme in Zurich.",
                source="corpus.example",
                fact_id="fact-1",
            )
        ],
        name=name,
    )


class TestReplicaGroup:
    def test_replicate_builds_byte_identical_copies(self):
        group = ReplicaGroup.replicate(_store(), 3, include_index=True)
        assert group.num_replicas == 3
        assert group.primary is group.stores[0]
        assert len(set(group.digests(include_index=True))) == 1
        assert group.verify() == group.primary.state_digest(include_index=True)

    def test_apply_ships_to_every_replica_at_the_same_epoch(self):
        group = ReplicaGroup.replicate(_store(), 3)
        report = group.apply(
            [
                Mutation.add_triple("Ada", "mentors", "Grace"),
                Mutation.add_document(
                    Document(
                        doc_id="d2",
                        url="https://corpus.example/d2",
                        title="Grace dossier",
                        text="Grace is mentored by Ada at Acme.",
                        source="corpus.example",
                        fact_id="fact-2",
                    )
                ),
            ]
        )
        assert report.epoch == 2
        assert all(store.epoch == 2 for store in group.stores)
        assert len(set(group.digests(include_index=True))) == 1
        for store in group.stores:
            assert Triple("Ada", "mentors", "Grace") in store.graph.triples()
            assert len(store.corpus) == 2

    def test_rejected_batch_leaves_every_copy_untouched(self):
        group = ReplicaGroup.replicate(_store(), 3)
        before = group.digests(include_index=True)
        with pytest.raises(ValueError, match="absent triple"):
            group.apply([Mutation.remove_triple("Ada", "never", "existed")])
        assert group.digests(include_index=True) == before
        assert all(store.epoch == 1 for store in group.stores)

    def test_out_of_band_mutation_is_detected_as_divergence(self):
        group = ReplicaGroup.replicate(_store(), 2)
        # Someone mutates a replica around the group (the forbidden path).
        group.stores[1].add_triple("Rogue", "edit", "Replica")
        with pytest.raises(ReplicaDivergedError):
            group.apply([Mutation.add_triple("Ada", "mentors", "Grace")])

    def test_empty_group_and_bad_replica_counts_rejected(self):
        with pytest.raises(ValueError):
            ReplicaGroup([])
        with pytest.raises(ValueError):
            ReplicaGroup.replicate(_store(), 0)
        mismatched = [_store("a"), _store("b")]
        mismatched[1].add_triple("Extra", "epoch", "Bump")
        with pytest.raises(ValueError, match="epochs diverge"):
            ReplicaGroup(mismatched, verify_digests=False)

    def test_runner_replica_groups_are_isolated_between_calls(self, replica_runner):
        """``BenchmarkRunner.replica_groups`` replays a fresh twin per call:
        byte-identical groups sharing no store state, so ingesting through
        one fleet never aliases (or epoch-skews) another."""
        groups_a = replica_runner.replica_groups("factbench", 2, 2)
        groups_b = replica_runner.replica_groups("factbench", 2, 2)
        subject = list(replica_runner.dataset("factbench"))[0].triple.subject
        owner = ShardedStore(
            [group.primary for group in groups_a]
        ).shard_for(subject)
        for group_a, group_b in zip(groups_a, groups_b):
            assert group_a.primary is not group_b.primary
            assert group_a.primary.state_digest() == group_b.primary.state_digest()
        groups_a[owner].apply([Mutation.add_triple(subject, "seenBy", "FleetA")])
        # Fleet A advanced in lockstep; fleet B (and the runner's cached
        # fleet) never moved.
        assert groups_a[owner].epoch == 2
        assert groups_b[owner].epoch == 1
        assert replica_runner.sharded_store("factbench", 2).shards[owner].epoch == 1
        groups_b[owner].verify()

    def test_ragged_replica_groups_rejected(self, replica_runner):
        config = ServiceConfig(enable_cache=False)
        provider = _healthy_provider(replica_runner)
        with pytest.raises(ValueError, match="same number of replica services"):
            ShardedValidationService(
                [
                    [ValidationService(provider, config), ValidationService(provider, config)],
                    [ValidationService(provider, config)],
                ]
            )

    def test_sharded_fleet_replicates_per_shard(self):
        triples = [Triple(f"e{i}", "p", f"e{i+1}") for i in range(12)]
        fleet = ShardedStore.partition(triples=triples, num_shards=3)
        groups = fleet.replicate(2)
        assert len(groups) == 3
        for shard, group in zip(fleet.shards, groups):
            assert group.primary is shard
            assert group.num_replicas == 2
            assert len(set(group.digests())) == 1


class _FlakyStrategy(ValidationStrategy):
    """Delegates to a real strategy, raising while ``broken["broken"]``."""

    name = "flaky"

    def __init__(self, inner: ValidationStrategy, broken: dict) -> None:
        self.inner = inner
        self.broken = broken

    def validate(self, fact) -> ValidationResult:
        if self.broken["broken"]:
            raise ConnectionError("replica backend unreachable")
        return self.inner.validate(fact)


class _StallStrategy(ValidationStrategy):
    name = "stall"

    def __init__(self, simulated_seconds: float) -> None:
        self.simulated_seconds = simulated_seconds

    def validate(self, fact) -> ValidationResult:
        return ValidationResult(
            fact_id=fact.fact_id,
            verdict=Verdict.TRUE,
            gold_label=fact.label,
            model="stall-model",
            method=self.name,
            latency_seconds=self.simulated_seconds,
            prompt_tokens=1,
            completion_tokens=1,
            raw_response="stalling",
        )


def _healthy_provider(runner):
    def provider(method, dataset, model):
        return runner.build_strategy(method, dataset, runner.registry.get(model))

    return provider


def _requests(runner, count=None):
    dataset = runner.dataset("factbench")
    facts = list(dataset)[: count or len(dataset)]
    return [ServiceRequest(fact, "dka", "gemma2:9b") for fact in facts]


class TestReadFanOut:
    def test_reads_spread_across_replicas_by_queue_depth(self, replica_runner):
        config = ServiceConfig(enable_cache=False, max_batch_size=2, time_scale=0.01)
        router = ShardedValidationService.from_runner(
            replica_runner, 1, config, replicas=3
        )
        requests = _requests(replica_runner) * 3

        async def go():
            async with router:
                return await router.submit_many(requests)

        responses = asyncio.run(go())
        assert all(r.outcome is RequestOutcome.COMPLETED for r in responses)
        served = [health.served for health in router.health[0]]
        # Every replica of the single shard took a meaningful share.
        assert all(count > 0 for count in served)
        assert sum(served) == len(requests)
        per_replica = [snap.completed for _, _, snap, _ in router.metrics.per_replica()]
        assert sum(per_replica) == len(requests)

    def test_replicated_verdicts_match_plain_service(self, replica_runner):
        config = ServiceConfig(enable_cache=False, max_batch_size=4)
        requests = _requests(replica_runner)

        async def run_router():
            router = ShardedValidationService.from_runner(
                replica_runner, 2, config, replicas=2
            )
            async with router:
                return await router.submit_many(requests)

        async def run_plain():
            service = ValidationService.from_runner(replica_runner, config)
            async with service:
                return await asyncio.gather(
                    *(service.submit(request) for request in requests)
                )

        routed = asyncio.run(run_router())
        plain = asyncio.run(run_plain())
        for request, sharded_response, plain_response in zip(requests, routed, plain):
            assert sharded_response.result.fact_id == request.fact.fact_id
            assert sharded_response.result == plain_response.result


class TestFailover:
    def _router(self, runner, broken, *, replicas=2, config=None, **kwargs):
        """One shard: replica 0 healthy, replicas 1.. flaky via ``broken``."""
        config = config or ServiceConfig(enable_cache=False, max_batch_size=4)
        healthy_provider = _healthy_provider(runner)

        def flaky_provider(method, dataset, model):
            return _FlakyStrategy(healthy_provider(method, dataset, model), broken)

        group = [ValidationService(healthy_provider, config)]
        group.extend(
            ValidationService(flaky_provider, config) for _ in range(replicas - 1)
        )
        return ShardedValidationService([group], **kwargs)

    def test_raising_replica_fails_over_with_zero_failed(self, replica_runner):
        broken = {"broken": True}
        router = self._router(replica_runner, broken)
        requests = _requests(replica_runner)

        async def go():
            async with router:
                return await router.submit_many(requests)

        responses = asyncio.run(go())
        # Every request completed: the sick replica's traffic was rescued.
        assert all(r.outcome is RequestOutcome.COMPLETED for r in responses)
        assert router.metrics.failures == 0
        assert router.metrics.failovers > 0
        assert not router.health[0][1].healthy
        assert router.health[0][1].failures > 0
        # Accounting stays exact across failovers: the sick replica's own
        # error counts are subtracted once a sibling completes the request.
        snapshot = router.metrics.snapshot()
        assert snapshot.completed == len(requests)
        assert snapshot.completed + snapshot.rejected + snapshot.errors == len(requests)
        assert snapshot.failovers == router.metrics.failovers
        assert snapshot.unhealthy_replicas == 1

    def test_all_replicas_down_surfaces_explicit_failed(self, replica_runner):
        broken = {"broken": True}
        config = ServiceConfig(enable_cache=False, max_batch_size=4)
        healthy_provider = _healthy_provider(replica_runner)

        def flaky_provider(method, dataset, model):
            return _FlakyStrategy(healthy_provider(method, dataset, model), broken)

        group = [ValidationService(flaky_provider, config) for _ in range(2)]
        router = ShardedValidationService([group])
        requests = _requests(replica_runner, 4)

        async def go():
            async with router:
                return await router.submit_many(requests)

        responses = asyncio.run(go())
        assert all(r.outcome is RequestOutcome.FAILED for r in responses)
        for response in responses:
            assert "replica 0" in response.error and "replica 1" in response.error
            assert "ConnectionError" in response.error
        assert router.metrics.failures == len(requests)
        snapshot = router.metrics.snapshot()
        # Exactly one error accounted per failed request, attempts aside.
        assert snapshot.errors == len(requests)
        assert snapshot.completed + snapshot.rejected + snapshot.errors == len(requests)

    def test_stalling_replica_fails_over_after_timeout(self, replica_runner):
        config = ServiceConfig(enable_cache=False, max_batch_size=1, time_scale=0.01)
        healthy = ValidationService(_healthy_provider(replica_runner), config)
        stalling = ValidationService(
            lambda method, dataset, model: _StallStrategy(1000.0), config
        )
        router = ShardedValidationService(
            [[stalling, healthy]], request_timeout_s=0.2
        )
        requests = _requests(replica_runner, 3)

        async def go():
            async with router:
                return await asyncio.wait_for(router.submit_many(requests), timeout=10.0)

        responses = asyncio.run(go())
        assert all(r.outcome is RequestOutcome.COMPLETED for r in responses)
        assert router.metrics.failures == 0
        assert router.health[0][0].timeouts > 0
        assert not router.health[0][0].healthy

    def test_probe_readmits_recovered_replica(self, replica_runner):
        broken = {"broken": True}
        router = self._router(
            replica_runner, broken, probe_interval_s=0.05
        )
        requests = _requests(replica_runner)

        async def go():
            async with router:
                await router.submit_many(requests[:6])
                sick = router.health[0][1]
                assert not sick.healthy
                served_while_down = sick.served
                # The replica recovers; after the probe interval the
                # balancer sends one canary and re-admits it.
                broken["broken"] = False
                await asyncio.sleep(0.08)
                await router.submit_many(requests)
                assert sick.healthy
                assert sick.probes > 0
                assert sick.readmissions >= 1
                assert sick.served > served_while_down

        asyncio.run(go())

    def test_failed_probe_resets_the_timer_and_stays_unhealthy(self, replica_runner):
        broken = {"broken": True}
        router = self._router(replica_runner, broken, probe_interval_s=0.05)
        requests = _requests(replica_runner)

        async def go():
            async with router:
                await router.submit_many(requests[:4])
                sick = router.health[0][1]
                assert not sick.healthy
                await asyncio.sleep(0.08)  # probe becomes due, replica still sick
                responses = await router.submit_many(requests[:4])
                assert all(
                    r.outcome is RequestOutcome.COMPLETED for r in responses
                )
                assert sick.probes >= 1
                assert not sick.healthy
                assert sick.readmissions == 0

        asyncio.run(go())

    def test_killed_replica_reroutes_and_epoch_vector_survives(self, replica_runner):
        # replay_twin: a fresh byte-identical fleet, so the module-cached
        # sharded store never leaks state across tests.
        store = replica_runner.sharded_store("factbench", 2).replay_twin()
        router = ShardedValidationService.from_runner(
            replica_runner,
            2,
            ServiceConfig(max_batch_size=4, queue_depth=4096),
            store=store,
            replicas=2,
        )
        requests = _requests(replica_runner)

        async def go():
            async with router:
                before = await router.submit_many(requests)
                await router.kill_replica(1, 0)
                after = await router.submit_many(requests)
                assert all(
                    r.outcome is RequestOutcome.COMPLETED for r in before + after
                )
                # The killed replica's lagging store never rolls the shard's
                # epoch component back.
                assert router.epoch_vector == (1, 1)
                assert not router.health[1][0].healthy

        asyncio.run(go())


class TestReplicatedIngest:
    def test_ingest_ships_to_every_replica_and_invalidates_owner_only(
        self, replica_runner
    ):
        store = replica_runner.sharded_store("factbench", 2).replay_twin()
        router = ShardedValidationService.from_runner(
            replica_runner,
            2,
            ServiceConfig(max_batch_size=4, queue_depth=4096),
            store=store,
            replicas=3,
        )
        requests = _requests(replica_runner)
        target = requests[0].fact
        owner = store.shard_for(target.triple.subject)
        other = 1 - owner
        other_fact = next(
            request.fact
            for request in requests
            if store.shard_for(request.fact.triple.subject) == other
        )
        batch = [Mutation.add_triple(target.triple.subject, "updatedBy", "Feed")]

        def cached_on(shard_index, fact, epoch):
            return [
                service.cache.get(fact, "dka", "gemma2:9b", record=False, epoch=epoch)
                for service in router.groups[shard_index]
            ]

        async def go():
            async with router:
                cold = await router.submit_many(requests)
                report = await router.apply_mutations(batch)
                # Between the ingest and the next pass: the sibling shard's
                # epoch-1 entries are still addressable on whichever replica
                # judged them, while the owning shard has nothing at its new
                # epoch — every post-ingest read there is re-judged.
                assert any(hit is not None for hit in cached_on(other, other_fact, 1))
                assert all(hit is None for hit in cached_on(owner, target, 2))
                after = await router.submit_many(requests)
                return cold, report, after

        cold, report, after = asyncio.run(go())
        assert all(response.outcome is RequestOutcome.COMPLETED for response in cold)
        assert report.shards_touched == (owner,)
        # Every replica of the owning shard applied the batch in lockstep...
        group = router.replica_groups[owner]
        assert all(store_copy.epoch == 2 for store_copy in group.stores)
        assert len(set(group.digests())) == 1
        # ...the sibling shard's replicas did not move...
        assert all(
            store_copy.epoch == 1
            for store_copy in router.replica_groups[other].stores
        )
        # ...and post-ingest responses carry the bumped owner epoch with no
        # owner-shard response served from a stale cache entry.
        for request, response in zip(requests, after):
            if store.shard_for(request.fact.triple.subject) == owner:
                assert not response.cached
            assert response.epoch_vector[owner] == 2
        # Re-judged verdicts are unchanged (DKA never reads the corpus): the
        # invalidation is freshness bookkeeping, not verdict churn.
        assert [r.result.verdict for r in after] == [r.result.verdict for r in cold]

    def test_ingest_validates_against_live_replicas_after_primary_kill(
        self, replica_runner
    ):
        """A killed primary's store copy stops at its death epoch; later
        ingests must validate against the live replicas' state, not the
        stale primary's (regression: remove-after-add used to raise)."""
        store = replica_runner.sharded_store("factbench", 2).replay_twin()
        router = ShardedValidationService.from_runner(
            replica_runner,
            2,
            ServiceConfig(max_batch_size=4),
            store=store,
            replicas=2,
        )
        subject = _requests(replica_runner)[0].fact.triple.subject
        owner = store.shard_for(subject)

        async def go():
            async with router:
                await router.kill_replica(owner, 0)  # the group primary dies
                await router.apply_mutations(
                    [Mutation.add_triple(subject, "flaggedBy", "Audit")]
                )
                # Only the live replicas know the triple; validating the
                # removal against the stale primary would reject it.
                await router.apply_mutations(
                    [Mutation.remove_triple(subject, "flaggedBy", "Audit")]
                )
                group = router.replica_groups[owner]
                # The dead primary froze at epoch 1; the live replica
                # applied both batches and the shard epoch never rolled back.
                assert group.stores[0].epoch == 1
                assert group.stores[1].epoch == 3
                assert router.epoch_vector[owner] == 3

        asyncio.run(go())

    def test_dead_shard_rejects_cross_shard_batch_before_any_apply(
        self, replica_runner
    ):
        """All-or-nothing across shards: a batch touching a shard with no
        live replicas must raise before any other shard applies."""
        store = replica_runner.sharded_store("factbench", 2).replay_twin()
        router = ShardedValidationService.from_runner(
            replica_runner,
            2,
            ServiceConfig(max_batch_size=4),
            store=store,
            replicas=2,
        )
        requests = _requests(replica_runner)
        subject_a = next(
            r.fact.triple.subject for r in requests
            if store.shard_for(r.fact.triple.subject) == 0
        )
        subject_b = next(
            r.fact.triple.subject for r in requests
            if store.shard_for(r.fact.triple.subject) == 1
        )

        async def go():
            async with router:
                await router.kill_replica(1, 0)
                await router.kill_replica(1, 1)
                with pytest.raises(RuntimeError, match="no live replicas"):
                    await router.apply_mutations(
                        [
                            Mutation.add_triple(subject_a, "crossShard", "Batch"),
                            Mutation.add_triple(subject_b, "crossShard", "Batch"),
                        ]
                    )
                # The healthy shard was not half-applied.
                assert all(
                    copy.epoch == 1 for copy in router.replica_groups[0].stores
                )

        asyncio.run(go())

    def test_restart_does_not_resurrect_killed_replica(self, replica_runner):
        """Regression: a stop()/start() cycle must not return a killed
        replica — whose store copy missed ingests — to the rotation; the
        next ingest to its shard would otherwise half-apply and raise
        ReplicaDivergedError after the live replicas already mutated."""
        store = replica_runner.sharded_store("factbench", 2).replay_twin()
        router = ShardedValidationService.from_runner(
            replica_runner,
            2,
            ServiceConfig(max_batch_size=4),
            store=store,
            replicas=2,
        )
        subject = _requests(replica_runner)[0].fact.triple.subject
        owner = store.shard_for(subject)

        async def go():
            async with router:
                await router.kill_replica(owner, 1)
                await router.apply_mutations(
                    [Mutation.add_triple(subject, "flaggedBy", "Audit")]
                )
            # Second lifecycle: the killed replica must stay stopped and
            # out of rotation, and ingests must keep succeeding.
            async with router:
                assert not router.health[owner][1].healthy
                assert router.groups[owner][1]._closed
                await router.apply_mutations(
                    [Mutation.remove_triple(subject, "flaggedBy", "Audit")]
                )
                group = router.replica_groups[owner]
                assert group.stores[0].epoch == 3
                assert group.stores[1].epoch == 1  # dead copy frozen pre-kill
                responses = await router.submit_many(_requests(replica_runner))
                assert all(
                    r.outcome is RequestOutcome.COMPLETED for r in responses
                )

        asyncio.run(go())

    def test_ingest_skips_digest_check_when_group_opted_out(self, replica_runner):
        """The router honours ReplicaGroup.verify_digests: epochs are always
        lockstep-checked, but the O(store) digest pass can be opted out."""
        fleet = replica_runner.sharded_store("factbench", 2).replay_twin()
        groups = fleet.replicate(2, verify_digests=False)
        shard_services = [
            [
                ValidationService.from_runner(
                    replica_runner,
                    ServiceConfig(max_batch_size=4),
                    store=group.stores[replica_index],
                )
                for replica_index in range(2)
            ]
            for group in groups
        ]
        router = ShardedValidationService(
            shard_services, store=fleet, replica_groups=groups
        )
        subject = _requests(replica_runner)[0].fact.triple.subject
        calls = {"digests": 0}
        original = VersionedKnowledgeStore.state_digest

        def counting(self, include_index=True):
            calls["digests"] += 1
            return original(self, include_index=include_index)

        async def go():
            async with router:
                await router.apply_mutations(
                    [Mutation.add_triple(subject, "flaggedBy", "Audit")]
                )

        VersionedKnowledgeStore.state_digest = counting
        try:
            asyncio.run(go())
        finally:
            VersionedKnowledgeStore.state_digest = original
        assert calls["digests"] == 0, "digest pass ran despite verify_digests=False"
        owner = fleet.shard_for(subject)
        assert all(copy.epoch == 2 for copy in groups[owner].stores)

    def test_rejected_batch_mutates_no_replica(self, replica_runner):
        store = replica_runner.sharded_store("factbench", 2).replay_twin()
        router = ShardedValidationService.from_runner(
            replica_runner,
            2,
            ServiceConfig(max_batch_size=4),
            store=store,
            replicas=2,
        )

        async def go():
            async with router:
                with pytest.raises(ValueError, match="absent triple"):
                    await router.apply_mutations(
                        [Mutation.remove_triple("No", "such", "Triple")]
                    )
                for group in router.replica_groups:
                    assert all(copy.epoch == 1 for copy in group.stores)
                    assert len(set(group.digests())) == 1

        asyncio.run(go())
