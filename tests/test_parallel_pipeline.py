"""Tests for the process-pool grid execution.

The grid cells are deterministic, so the parallel runner must produce
verdicts byte-identical to the serial runner, merged in grid order.
"""

import json

import pytest

from repro.benchmark import BenchmarkRunner, ExperimentConfig
from repro.validation import ParallelValidationPipeline


def _square(value):
    return value * value


def _grid_verdict_bytes(grid) -> bytes:
    """Canonical byte serialisation of every verdict in a grid."""
    payload = {
        method: {
            dataset: {
                model: {fact_id: verdict.value for fact_id, verdict in run.verdicts().items()}
                for model, run in models.items()
            }
            for dataset, models in datasets.items()
        }
        for method, datasets in grid.items()
    }
    return json.dumps(payload, sort_keys=True).encode("utf-8")


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(
        scale=0.03,
        max_facts_per_dataset=16,
        world_scale=0.15,
        methods=("dka", "giv-z"),
        datasets=("factbench",),
        models=("gemma2:9b", "qwen2.5:7b"),
        include_commercial_in_grid=False,
        seed=11,
    )


class TestParallelValidationPipeline:
    def test_map_cells_preserves_submission_order(self):
        pipeline = ParallelValidationPipeline(workers=3)
        assert pipeline.map_cells(_square, [5, 3, 1, 8]) == [25, 9, 1, 64]

    def test_single_worker_runs_in_process(self):
        pipeline = ParallelValidationPipeline(workers=1)
        assert pipeline.map_cells(_square, [2, 4]) == [4, 16]

    def test_workers_floor_at_one(self):
        assert ParallelValidationPipeline(workers=0).workers == 1


class TestRunGrid:
    def test_parallel_verdicts_byte_identical_to_serial(self, tiny_config):
        serial = BenchmarkRunner(tiny_config).run_grid(parallel=1)
        parallel = BenchmarkRunner(tiny_config).run_grid(parallel=2)
        assert _grid_verdict_bytes(parallel) == _grid_verdict_bytes(serial)

    def test_parallel_populates_run_cache(self, tiny_config):
        runner = BenchmarkRunner(tiny_config)
        grid = runner.run_grid(parallel=2)
        for cell in runner.grid_cells():
            method, dataset, model = cell
            assert runner.run(method, dataset, model) is grid[method][dataset][model]

    def test_parallel_merges_telemetry(self, tiny_config):
        runner = BenchmarkRunner(tiny_config)
        runner.run_grid(parallel=2)
        assert len(runner.telemetry) > 0

    def test_full_grid_matches_run_grid(self, tiny_config):
        runner = BenchmarkRunner(tiny_config)
        assert _grid_verdict_bytes(runner.full_grid()) == _grid_verdict_bytes(
            runner.run_grid(parallel=1)
        )

    def test_grid_cells_cover_configuration(self, tiny_config):
        runner = BenchmarkRunner(tiny_config)
        cells = runner.grid_cells()
        assert len(cells) == 2 * 1 * 2
        assert cells[0] == ("dka", "factbench", "gemma2:9b")
