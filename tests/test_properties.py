"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.efficiency import iqr_filter
from repro.evaluation.metrics import classwise_f1, confusion_counts, precision_recall_f1
from repro.evaluation.upset import exclusive_intersections, upset_intersections
from repro.kg import KnowledgeGraph, Triple, camel_case, decode_label, encode_label, split_camel_case
from repro.llm.tokenizer import SimpleTokenizer
from repro.retrieval.chunking import SlidingWindowChunker, split_sentences
from repro.retrieval.embeddings import HashingEmbedder
from repro.validation.consensus import majority_vote
from repro.validation.prompts import parse_verdict

# ---------------------------------------------------------------- strategies

_names = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll"), max_codepoint=0x7F),
    min_size=1,
    max_size=12,
)
_labels = st.lists(_names, min_size=1, max_size=4).map(" ".join)
_fact_ids = st.lists(st.sampled_from([f"f{i}" for i in range(20)]), min_size=1, max_size=20, unique=True)


# ------------------------------------------------------------------ encodings


@settings(max_examples=60)
@given(_labels)
def test_label_encoding_roundtrip(label):
    assert decode_label(encode_label(label)) == " ".join(label.split())


_camel_words = st.text(
    alphabet=st.characters(whitelist_categories=("Ll",), max_codepoint=0x7A, min_codepoint=0x61),
    min_size=2,
    max_size=10,
)


@settings(max_examples=60)
@given(st.lists(_camel_words, min_size=1, max_size=5))
def test_camel_case_roundtrip(words):
    # Single-character words are excluded: consecutive capitalised initials
    # (e.g. "a a" -> "aA") are not recoverable, as with real camelCase.
    phrase = " ".join(words)
    assert split_camel_case(camel_case(phrase)) == phrase


# ------------------------------------------------------------------- metrics


@settings(max_examples=60)
@given(
    st.dictionaries(
        st.sampled_from([f"f{i}" for i in range(30)]),
        st.booleans(),
        min_size=1,
        max_size=30,
    ),
    st.randoms(use_true_random=False),
)
def test_confusion_counts_partition_total(gold, rng):
    predictions = {
        fact_id: rng.choice([True, False, None]) for fact_id in gold
    }
    counts = confusion_counts(predictions, gold)
    assert counts.total == len(gold)
    assert counts.true_positive + counts.false_negative == sum(
        1 for fact_id, label in gold.items() if label and predictions[fact_id] is not None
    )


@settings(max_examples=60)
@given(st.integers(0, 50), st.integers(0, 50), st.integers(0, 50))
def test_precision_recall_f1_bounds(tp, fp, fn):
    precision, recall, f1 = precision_recall_f1(tp, fp, fn)
    assert 0.0 <= precision <= 1.0
    assert 0.0 <= recall <= 1.0
    assert min(precision, recall) - 1e-9 <= f1 <= max(precision, recall) + 1e-9


@settings(max_examples=40)
@given(st.dictionaries(st.sampled_from([f"f{i}" for i in range(20)]), st.booleans(), min_size=1))
def test_perfect_predictions_give_perfect_f1(gold):
    scores = classwise_f1(dict(gold), gold)
    if any(gold.values()):
        assert scores.f1_true == 1.0
    if not all(gold.values()):
        assert scores.f1_false == 1.0


@settings(max_examples=60)
@given(st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), max_size=50))
def test_iqr_filter_is_subset_and_preserves_bulk(values):
    filtered = iqr_filter(values)
    assert len(filtered) <= len(values)
    for value in filtered:
        assert value in values
    if len(values) >= 4:
        assert len(filtered) >= len(values) // 2


# ------------------------------------------------------------------ consensus


@settings(max_examples=100)
@given(st.lists(st.sampled_from([True, False, None]), min_size=4, max_size=4))
def test_majority_vote_symmetry(votes):
    verdict = majority_vote(votes)
    flipped = majority_vote([None if vote is None else not vote for vote in votes])
    mapping = {"true": "false", "false": "true", "tie": "tie"}
    assert flipped.value == mapping[verdict.value]


# ---------------------------------------------------------------------- upset


@settings(max_examples=50)
@given(st.dictionaries(st.sampled_from(["m1", "m2", "m3", "m4"]), _fact_ids, min_size=1, max_size=4))
def test_upset_cells_partition_union(correct_by_model):
    union = set().union(*[set(v) for v in correct_by_model.values()])
    cells = upset_intersections(correct_by_model)
    assert sum(cell.count for cell in cells) == len(union)
    exclusive = exclusive_intersections({k: set(v) for k, v in correct_by_model.items()})
    seen = set()
    for items in exclusive.values():
        assert not (seen & items)
        seen |= items


# ------------------------------------------------------------------- chunking


@settings(max_examples=40)
@given(st.lists(st.sampled_from(["Alpha beta.", "Gamma delta!", "Epsilon zeta?"]), max_size=12),
       st.integers(1, 4), st.integers(1, 3))
def test_chunker_covers_all_sentences(sentences, window, stride):
    text = " ".join(sentences)
    chunker = SlidingWindowChunker(window_size=window, stride=stride)
    chunks = chunker.chunk_text(text)
    combined = " ".join(chunk.text for chunk in chunks)
    for sentence in split_sentences(text):
        assert sentence in combined
    for chunk in chunks:
        assert len(split_sentences(chunk.text)) <= window


# ------------------------------------------------------------------ tokenizer


@settings(max_examples=60)
@given(st.text(max_size=300))
def test_tokenizer_never_negative_and_concat_superadditive(text):
    tokenizer = SimpleTokenizer()
    count = tokenizer.count(text)
    assert count >= 0
    assert tokenizer.count(text + " " + text) >= count


# ----------------------------------------------------------------- embeddings


@settings(max_examples=40)
@given(st.text(max_size=120))
def test_embeddings_unit_norm_or_zero(text):
    import numpy as np

    vector = HashingEmbedder(dimensions=64).embed(text)
    norm = np.linalg.norm(vector)
    assert norm == 0.0 or abs(norm - 1.0) < 1e-9


# -------------------------------------------------------------------- parsing


@settings(max_examples=60)
@given(st.booleans(), st.sampled_from(["json", "word", "sentence"]))
def test_parse_verdict_recovers_intended_label(value, style):
    word = "true" if value else "false"
    if style == "json":
        text = '{"verdict": "%s", "confidence": 0.7}' % word
    elif style == "word":
        text = word.capitalize() + "."
    else:
        text = f"The statement is {word}."
    assert parse_verdict(text) is value


# ----------------------------------------------------------------------- graph


@settings(max_examples=40)
@given(st.lists(st.tuples(st.sampled_from("abcdef"), st.sampled_from(["p", "q"]), st.sampled_from("abcdef")),
                max_size=20))
def test_graph_add_remove_roundtrip(edges):
    graph = KnowledgeGraph()
    triples = [Triple(s, p, o) for s, p, o in edges]
    graph.add_all(triples)
    assert len(graph) == len(set(triples))
    for triple in set(triples):
        assert triple in graph
        assert triple.object in graph.objects(triple.subject, triple.predicate)
    for triple in set(triples):
        graph.remove(triple)
    assert len(graph) == 0
