"""Verdict-cache keying and LRU thread-safety.

The keying tests pin the satellite requirement: identical fact text under
different (method, model, dataset) coordinates must never collide, and a
cache hit must return the exact :class:`ValidationResult` — token
accounting included — that was stored.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.datasets import LabeledFact
from repro.kg import Triple
from repro.retrieval.cache import LRUCache
from repro.service import VerdictCache, verdict_cache_key
from repro.validation import ValidationResult, Verdict


def _fact(fact_id: str = "fb-001", dataset: str = "factbench", label: bool = True) -> LabeledFact:
    return LabeledFact(
        fact_id=fact_id,
        triple=Triple("Alice_Smith", "worksFor", "Acme_Corp"),
        label=label,
        dataset=dataset,
        subject_name="Alice Smith",
        object_name="Acme Corp",
        predicate_name="worksFor",
    )


def _result(fact: LabeledFact, method: str, model: str, verdict: Verdict = Verdict.TRUE) -> ValidationResult:
    return ValidationResult(
        fact_id=fact.fact_id,
        verdict=verdict,
        gold_label=fact.label,
        model=model,
        method=method,
        latency_seconds=0.123,
        prompt_tokens=57,
        completion_tokens=21,
        raw_response="True. Records agree.",
    )


class TestVerdictCacheKeying:
    def test_identical_fact_text_distinct_coordinates_never_collide(self):
        cache = VerdictCache(capacity=64, shards=4)
        fact = _fact()
        # Same encoded triple text, different dataset and id.
        twin = _fact(fact_id="yago-001", dataset="yago")
        coordinates = [
            (fact, "dka", "gemma2:9b"),
            (fact, "dka", "qwen2.5:7b"),   # other model
            (fact, "giv-z", "gemma2:9b"),  # other method
            (twin, "dka", "gemma2:9b"),    # other dataset, same text
        ]
        keys = {verdict_cache_key(f, method, model) for f, method, model in coordinates}
        assert len(keys) == len(coordinates)

        verdicts = [Verdict.TRUE, Verdict.FALSE, Verdict.INVALID, Verdict.FALSE]
        for (f, method, model), verdict in zip(coordinates, verdicts):
            cache.put(f, method, model, _result(f, method, model, verdict))
        for (f, method, model), verdict in zip(coordinates, verdicts):
            hit = cache.get(f, method, model)
            assert hit is not None
            assert hit.verdict is verdict
            assert hit.method == method and hit.model == model

    def test_hit_preserves_exact_result_fields_including_tokens(self):
        cache = VerdictCache(capacity=8, shards=2)
        fact = _fact()
        stored = _result(fact, "dka", "gemma2:9b")
        cache.put(fact, "dka", "gemma2:9b", stored)
        hit = cache.get(fact, "dka", "gemma2:9b")
        assert hit == stored  # frozen dataclass: field-by-field equality
        assert (hit.prompt_tokens, hit.completion_tokens, hit.total_tokens) == (57, 21, 78)
        assert hit.latency_seconds == pytest.approx(0.123)
        assert hit.raw_response == stored.raw_response

    def test_miss_returns_none_and_counts(self):
        cache = VerdictCache(capacity=8, shards=2)
        fact = _fact()
        assert cache.get(fact, "dka", "gemma2:9b") is None
        cache.put(fact, "dka", "gemma2:9b", _result(fact, "dka", "gemma2:9b"))
        assert cache.get(fact, "dka", "gemma2:9b") is not None
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == pytest.approx(0.5)
        assert stats.size == 1

    def test_capacity_splits_across_shards(self):
        cache = VerdictCache(capacity=16, shards=4)
        assert cache.capacity == 16
        for index in range(200):
            fact = _fact(fact_id=f"fb-{index:03d}")
            cache.put(fact, "dka", "gemma2:9b", _result(fact, "dka", "gemma2:9b"))
        assert len(cache) <= 16

    def test_clear_resets_contents_and_stats(self):
        cache = VerdictCache(capacity=8, shards=2)
        fact = _fact()
        cache.put(fact, "dka", "gemma2:9b", _result(fact, "dka", "gemma2:9b"))
        cache.get(fact, "dka", "gemma2:9b")
        cache.clear()
        stats = cache.stats()
        assert (len(cache), stats.hits, stats.misses) == (0, 0, 0)


class TestLRUCacheThreadSafety:
    def test_concurrent_mixed_workload_keeps_invariants(self):
        cache = LRUCache(capacity=64)
        errors = []

        def hammer(worker: int) -> None:
            try:
                for step in range(2000):
                    key = (worker * 7 + step) % 200
                    cache.put(key, (worker, step))
                    value = cache.get(key)
                    # Another thread may have overwritten or evicted the key,
                    # but a stored value is always a coherent (worker, step)
                    # pair, never a torn/corrupted entry.
                    assert value is None or (isinstance(value, tuple) and len(value) == 2)
                    if step % 97 == 0:
                        _ = key in cache
                        _ = len(cache)
            except Exception as exc:  # pragma: no cover - only on regression
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(worker,)) for worker in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64
        # The OrderedDict survived: evict-to-capacity still works afterwards.
        for index in range(100):
            cache.put(("post", index), index)
        assert len(cache) <= 64

    def test_concurrent_clear_does_not_corrupt(self):
        cache = LRUCache(capacity=32)
        stop = threading.Event()

        def writer() -> None:
            index = 0
            while not stop.is_set():
                cache.put(index % 50, index)
                index += 1

        def clearer() -> None:
            while not stop.is_set():
                cache.clear()

        threads = [threading.Thread(target=writer) for _ in range(3)]
        threads.append(threading.Thread(target=clearer))
        for thread in threads:
            thread.start()
        time.sleep(0.2)
        stop.set()
        for thread in threads:
            thread.join()
        assert len(cache) <= 32
