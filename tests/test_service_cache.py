"""Verdict-cache keying and LRU thread-safety.

The keying tests pin the satellite requirement: identical fact text under
different (method, model, dataset) coordinates must never collide, and a
cache hit must return the exact :class:`ValidationResult` — token
accounting included — that was stored.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.datasets import LabeledFact
from repro.kg import Triple
from repro.retrieval.cache import LRUCache
from repro.service import VerdictCache, verdict_cache_key
from repro.validation import ValidationResult, Verdict


def _fact(fact_id: str = "fb-001", dataset: str = "factbench", label: bool = True) -> LabeledFact:
    return LabeledFact(
        fact_id=fact_id,
        triple=Triple("Alice_Smith", "worksFor", "Acme_Corp"),
        label=label,
        dataset=dataset,
        subject_name="Alice Smith",
        object_name="Acme Corp",
        predicate_name="worksFor",
    )


def _result(fact: LabeledFact, method: str, model: str, verdict: Verdict = Verdict.TRUE) -> ValidationResult:
    return ValidationResult(
        fact_id=fact.fact_id,
        verdict=verdict,
        gold_label=fact.label,
        model=model,
        method=method,
        latency_seconds=0.123,
        prompt_tokens=57,
        completion_tokens=21,
        raw_response="True. Records agree.",
    )


class TestVerdictCacheKeying:
    def test_identical_fact_text_distinct_coordinates_never_collide(self):
        cache = VerdictCache(capacity=64, shards=4)
        fact = _fact()
        # Same encoded triple text, different dataset and id.
        twin = _fact(fact_id="yago-001", dataset="yago")
        coordinates = [
            (fact, "dka", "gemma2:9b"),
            (fact, "dka", "qwen2.5:7b"),   # other model
            (fact, "giv-z", "gemma2:9b"),  # other method
            (twin, "dka", "gemma2:9b"),    # other dataset, same text
        ]
        keys = {verdict_cache_key(f, method, model) for f, method, model in coordinates}
        assert len(keys) == len(coordinates)

        verdicts = [Verdict.TRUE, Verdict.FALSE, Verdict.INVALID, Verdict.FALSE]
        for (f, method, model), verdict in zip(coordinates, verdicts):
            cache.put(f, method, model, _result(f, method, model, verdict))
        for (f, method, model), verdict in zip(coordinates, verdicts):
            hit = cache.get(f, method, model)
            assert hit is not None
            assert hit.verdict is verdict
            assert hit.method == method and hit.model == model

    def test_hit_preserves_exact_result_fields_including_tokens(self):
        cache = VerdictCache(capacity=8, shards=2)
        fact = _fact()
        stored = _result(fact, "dka", "gemma2:9b")
        cache.put(fact, "dka", "gemma2:9b", stored)
        hit = cache.get(fact, "dka", "gemma2:9b")
        assert hit == stored  # frozen dataclass: field-by-field equality
        assert (hit.prompt_tokens, hit.completion_tokens, hit.total_tokens) == (57, 21, 78)
        assert hit.latency_seconds == pytest.approx(0.123)
        assert hit.raw_response == stored.raw_response

    def test_miss_returns_none_and_counts(self):
        cache = VerdictCache(capacity=8, shards=2)
        fact = _fact()
        assert cache.get(fact, "dka", "gemma2:9b") is None
        cache.put(fact, "dka", "gemma2:9b", _result(fact, "dka", "gemma2:9b"))
        assert cache.get(fact, "dka", "gemma2:9b") is not None
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == pytest.approx(0.5)
        assert stats.size == 1

    def test_capacity_splits_across_shards(self):
        cache = VerdictCache(capacity=16, shards=4)
        assert cache.capacity == 16
        for index in range(200):
            fact = _fact(fact_id=f"fb-{index:03d}")
            cache.put(fact, "dka", "gemma2:9b", _result(fact, "dka", "gemma2:9b"))
        assert len(cache) <= 16

    def test_clear_resets_contents_and_stats(self):
        cache = VerdictCache(capacity=8, shards=2)
        fact = _fact()
        cache.put(fact, "dka", "gemma2:9b", _result(fact, "dka", "gemma2:9b"))
        cache.get(fact, "dka", "gemma2:9b")
        cache.clear()
        stats = cache.stats()
        assert (len(cache), stats.hits, stats.misses) == (0, 0, 0)


class TestVerdictCacheConcurrencyStress:
    """Hammer gets/puts/epoch-bumps from threads: no lost updates, no
    stale-epoch hits, stats that add up."""

    def test_epoch_bumps_under_concurrency_never_serve_stale_hits(self):
        # Capacity comfortably above the live key count so a vanished entry
        # could only mean a lost update, not LRU pressure.
        cache = VerdictCache(capacity=4096, shards=8)
        facts = [_fact(fact_id=f"fb-{index:03d}") for index in range(40)]
        epoch_box = [0]  # current epoch, bumped mid-run by the ingest thread
        gets_issued = []
        errors = []

        def tagged(fact: LabeledFact, epoch: int) -> ValidationResult:
            # The epoch rides in raw_response so a reader can prove the
            # value it got back was written at the epoch it asked for.
            result = _result(fact, "dka", "gemma2:9b")
            return ValidationResult(
                **{**result.__dict__, "raw_response": f"epoch={epoch}"}
            )

        def hammer(worker: int) -> None:
            rng_state = worker * 7919
            count = 0
            try:
                for step in range(1500):
                    fact = facts[(rng_state + step) % len(facts)]
                    epoch = epoch_box[0]
                    cache.put(fact, "dka", "gemma2:9b", tagged(fact, epoch), epoch=epoch)
                    hit = cache.get(fact, "dka", "gemma2:9b", epoch=epoch)
                    count += 1
                    # The key carries the epoch: a lookup at epoch e can only
                    # ever see a value written at epoch e.
                    if hit is not None:
                        assert hit.raw_response == f"epoch={epoch}", (
                            f"stale-epoch hit: asked {epoch}, got {hit.raw_response}"
                        )
                    # A lookup at the *current* epoch (possibly just bumped by
                    # the ingest thread) must likewise never surface an older
                    # generation's value.
                    fresh = epoch_box[0]
                    other = facts[(rng_state + step * 3) % len(facts)]
                    stale_check = cache.get(other, "dka", "gemma2:9b", epoch=fresh)
                    count += 1
                    if stale_check is not None:
                        assert stale_check.raw_response == f"epoch={fresh}", (
                            f"stale-epoch hit: asked {fresh}, "
                            f"got {stale_check.raw_response}"
                        )
            except Exception as exc:  # pragma: no cover - only on regression
                errors.append(exc)
            finally:
                gets_issued.append(count)

        def bumper() -> None:
            for _ in range(5):
                time.sleep(0.01)
                epoch_box[0] += 1

        threads = [threading.Thread(target=hammer, args=(worker,)) for worker in range(8)]
        threads.append(threading.Thread(target=bumper))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

        # Stats consistency: every recorded lookup is exactly one hit or one
        # miss — concurrency must not lose or double-count observations.
        stats = cache.stats()
        assert stats.hits + stats.misses == sum(gets_issued)
        assert stats.hits > 0
        # A deterministic generation that nobody wrote: all misses, and the
        # counters keep adding up exactly.
        unwritten = epoch_box[0] + 1000
        for fact in facts:
            assert cache.get(fact, "dka", "gemma2:9b", epoch=unwritten) is None
        stats = cache.stats()
        assert stats.misses >= len(facts)
        assert stats.hits + stats.misses == sum(gets_issued) + len(facts)

        # No lost updates: quiesced, a final write at the final epoch is
        # visible for every key, and pre-bump epochs still resolve their own
        # (never another epoch's) values.
        final_epoch = epoch_box[0]
        for fact in facts:
            cache.put(
                fact, "dka", "gemma2:9b", tagged(fact, final_epoch), epoch=final_epoch
            )
        for fact in facts:
            hit = cache.get(fact, "dka", "gemma2:9b", epoch=final_epoch)
            assert hit is not None and hit.raw_response == f"epoch={final_epoch}"

    def test_concurrent_puts_across_epochs_keep_entries_addressable(self):
        cache = VerdictCache(capacity=2048, shards=4)
        facts = [_fact(fact_id=f"fb-{index:03d}") for index in range(20)]
        epochs = range(4)
        errors = []

        def writer(epoch: int) -> None:
            try:
                for _ in range(300):
                    for fact in facts:
                        cache.put(fact, "dka", "gemma2:9b", _result(fact, "dka", "gemma2:9b"), epoch=epoch)
            except Exception as exc:  # pragma: no cover - only on regression
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(epoch,)) for epoch in epochs]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Epoch-distinct keys never collide: all four generations coexist.
        assert len(cache) == len(facts) * len(epochs)
        for epoch in epochs:
            for fact in facts:
                assert cache.get(fact, "dka", "gemma2:9b", record=False, epoch=epoch) is not None


class TestLRUCacheThreadSafety:
    def test_concurrent_mixed_workload_keeps_invariants(self):
        cache = LRUCache(capacity=64)
        errors = []

        def hammer(worker: int) -> None:
            try:
                for step in range(2000):
                    key = (worker * 7 + step) % 200
                    cache.put(key, (worker, step))
                    value = cache.get(key)
                    # Another thread may have overwritten or evicted the key,
                    # but a stored value is always a coherent (worker, step)
                    # pair, never a torn/corrupted entry.
                    assert value is None or (isinstance(value, tuple) and len(value) == 2)
                    if step % 97 == 0:
                        _ = key in cache
                        _ = len(cache)
            except Exception as exc:  # pragma: no cover - only on regression
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(worker,)) for worker in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64
        # The OrderedDict survived: evict-to-capacity still works afterwards.
        for index in range(100):
            cache.put(("post", index), index)
        assert len(cache) <= 64

    def test_concurrent_clear_does_not_corrupt(self):
        cache = LRUCache(capacity=32)
        stop = threading.Event()

        def writer() -> None:
            index = 0
            while not stop.is_set():
                cache.put(index % 50, index)
                index += 1

        def clearer() -> None:
            while not stop.is_set():
                cache.clear()

        threads = [threading.Thread(target=writer) for _ in range(3)]
        threads.append(threading.Thread(target=clearer))
        for thread in threads:
            thread.start()
        time.sleep(0.2)
        stop.set()
        for thread in threads:
            thread.join()
        assert len(cache) <= 32
