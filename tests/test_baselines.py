"""Tests for the internal KG-based fact-checking baselines."""

import pytest

from repro.baselines import (
    EvidentialPathChecker,
    KnowledgeLinker,
    KnowledgeStream,
    PredPath,
    build_reference_graph,
)
from repro.kg import KnowledgeGraph, Triple


@pytest.fixture(scope="module")
def toy_graph():
    """A small, hand-built KG with a densely supported pair and an isolated pair.

    alice and bob share a city, an employer, and a club, while dora is only
    weakly connected to bob's neighbourhood.
    """
    graph = KnowledgeGraph("toy")
    graph.add_all(
        [
            Triple("alice", "birthPlace", "springfield"),
            Triple("bob", "birthPlace", "springfield"),
            Triple("alice", "employer", "acme"),
            Triple("bob", "employer", "acme"),
            Triple("alice", "team", "rovers"),
            Triple("bob", "team", "rovers"),
            Triple("carol", "birthPlace", "shelbyville"),
            Triple("dora", "birthPlace", "shelbyville"),
            Triple("springfield", "locatedIn", "freedonia"),
            Triple("shelbyville", "locatedIn", "freedonia"),
            Triple("alice", "spouse", "bob"),
        ]
    )
    return graph


@pytest.fixture(scope="module")
def reference_graph(world):
    return build_reference_graph(world, exclude_fraction=0.0)


class TestReferenceGraph:
    def test_nodes_are_names(self, world, reference_graph):
        person = world.entities_of_type(list(world.by_type)[0])[0]
        assert person.name in reference_graph.nodes()

    def test_exclusion_shrinks_graph(self, world):
        full = build_reference_graph(world, exclude_fraction=0.0)
        partial = build_reference_graph(world, exclude_fraction=0.5, seed=1)
        assert len(partial) < len(full)


class TestKnowledgeStream:
    def test_connected_pair_scores_higher_than_isolated(self, toy_graph):
        checker = KnowledgeStream(toy_graph)
        connected = checker.score("alice", "spouse", "bob")
        isolated = checker.score("alice", "spouse", "dora")
        assert connected > isolated

    def test_direct_edge_excluded_from_flow(self, toy_graph):
        checker = KnowledgeStream(toy_graph)
        # The spouse edge itself must not be used as evidence for itself:
        # remove all the shared context and the score collapses.
        sparse = KnowledgeGraph("sparse")
        sparse.add(Triple("alice", "spouse", "bob"))
        assert KnowledgeStream(sparse).score("alice", "spouse", "bob") == 0.0

    def test_scores_in_unit_interval(self, toy_graph):
        checker = KnowledgeStream(toy_graph)
        for pair in (("alice", "bob"), ("alice", "dora"), ("carol", "bob")):
            assert 0.0 <= checker.score(pair[0], "spouse", pair[1]) <= 1.0

    def test_same_node_zero(self, toy_graph):
        assert KnowledgeStream(toy_graph).score("alice", "spouse", "alice") == 0.0

    def test_unknown_entity_zero(self, toy_graph):
        assert KnowledgeStream(toy_graph).score("alice", "spouse", "zelda") == 0.0


class TestKnowledgeLinker:
    def test_short_specific_path_scores_high(self, toy_graph):
        checker = KnowledgeLinker(toy_graph)
        assert checker.score("alice", "spouse", "bob") > checker.score("alice", "spouse", "dora")

    def test_no_path_scores_zero(self, toy_graph):
        checker = KnowledgeLinker(toy_graph)
        assert checker.score("alice", "spouse", "island") == 0.0

    def test_validate_adapter(self, toy_graph, factbench_small):
        checker = KnowledgeLinker(toy_graph)
        result = checker.validate(factbench_small[0])
        assert result.method == "klinker"
        assert result.raw_response.startswith("score=")


class TestPredPath:
    def test_fit_and_score_discriminates(self, world, reference_graph, factbench_small):
        train, test = factbench_small.split(0.6, seed=3)
        checker = PredPath(reference_graph, max_path_length=2, max_paths_per_pair=40)
        checker.fit(train.facts())
        assert checker.trained_predicates
        positives = [f for f in test if f.label][:5]
        negatives = [f for f in test if not f.label][:5]
        if positives and negatives:
            pos_scores = [
                checker.score(f.subject_name, f.base_predicate(), f.object_name) for f in positives
            ]
            neg_scores = [
                checker.score(f.subject_name, f.base_predicate(), f.object_name) for f in negatives
            ]
            assert sum(pos_scores) / len(pos_scores) >= sum(neg_scores) / len(neg_scores) - 0.15

    def test_untrained_predicate_neutral(self, reference_graph):
        checker = PredPath(reference_graph)
        assert checker.score("A", "unknownPredicate", "B") == pytest.approx(0.5)


class TestEvidentialPaths:
    def test_prepare_is_idempotent(self, toy_graph):
        checker = EvidentialPathChecker(toy_graph, examples_per_predicate=5)
        checker.prepare_predicate("birthPlace")
        checker.prepare_predicate("birthPlace")
        assert "birthPlace" in checker._prepared

    def test_score_in_unit_interval(self, reference_graph):
        checker = EvidentialPathChecker(reference_graph, examples_per_predicate=8)
        score = checker.score("Nobody Special", "birthPlace", "Nowhere Town")
        assert 0.0 <= score <= 1.0

    def test_validate_dataset_runs(self, reference_graph, factbench_small):
        checker = EvidentialPathChecker(reference_graph, examples_per_predicate=6)
        subset = factbench_small.sample(6, seed=1)
        run = checker.validate_dataset(subset)
        assert len(run) == len(subset)
