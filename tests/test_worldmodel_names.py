"""Tests for deterministic name generation."""

from repro.worldmodel.names import NameGenerator, _roman


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        first = NameGenerator(seed=42)
        second = NameGenerator(seed=42)
        assert [first.person() for _ in range(20)] == [second.person() for _ in range(20)]

    def test_different_seed_different_sequence(self):
        first = [NameGenerator(seed=1).person() for _ in range(10)]
        second = [NameGenerator(seed=2).person() for _ in range(10)]
        assert first != second


class TestUniqueness:
    def test_persons_unique(self):
        generator = NameGenerator(seed=0)
        names = [generator.person() for _ in range(500)]
        assert len(set(names)) == 500

    def test_cities_unique(self):
        generator = NameGenerator(seed=0)
        names = [generator.city() for _ in range(300)]
        assert len(set(names)) == 300

    def test_uniqueness_across_categories_within_one_generator(self):
        generator = NameGenerator(seed=0)
        names = [generator.country() for _ in range(60)]
        names += [generator.organization() for _ in range(60)]
        assert len(set(names)) == len(names)

    def test_exhaustion_falls_back_to_roman_suffix(self):
        generator = NameGenerator(seed=0)
        # Far more award names than raw combinations (12 stems x 6 kinds = 72).
        names = [generator.award() for _ in range(200)]
        assert len(set(names)) == 200
        assert any(name.split()[-1] in {"II", "III", "IV", "V"} for name in names)


class TestShapes:
    def test_person_has_first_and_last(self):
        name = NameGenerator(seed=7).person()
        assert len(name.split()) == 2

    def test_university_anchored_to_city(self):
        generator = NameGenerator(seed=7)
        name = generator.university("Brimworth")
        assert name.startswith("Brimworth")

    def test_team_anchored_to_city(self):
        generator = NameGenerator(seed=7)
        name = generator.sports_team("Oakmere")
        assert name.startswith("Oakmere")

    def test_year_in_range(self):
        generator = NameGenerator(seed=7)
        for _ in range(50):
            assert 1900 <= generator.year(1900, 1950) <= 1950

    def test_pools_are_copies(self):
        generator = NameGenerator(seed=7)
        pool = generator.genre_pool()
        pool.append("Mutated")
        assert "Mutated" not in generator.genre_pool()


class TestRoman:
    def test_small_values(self):
        assert _roman(2) == "II"
        assert _roman(4) == "IV"
        assert _roman(9) == "IX"

    def test_larger_value(self):
        assert _roman(1987) == "MCMLXXXVII"
