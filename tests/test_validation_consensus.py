"""Tests for majority-vote consensus and consensus alignment."""

import pytest

from repro.validation import (
    MajorityVoteConsensus,
    ValidationResult,
    ValidationRun,
    Verdict,
    consensus_alignment,
    majority_vote,
)


def _result(fact_id, verdict, gold, model="m", method="dka"):
    return ValidationResult(
        fact_id=fact_id,
        verdict=verdict,
        gold_label=gold,
        model=model,
        method=method,
        latency_seconds=0.1,
        prompt_tokens=10,
        completion_tokens=5,
    )


def _run(model, verdicts, gold):
    run = ValidationRun(method="dka", model=model, dataset="synthetic")
    for index, (verdict, label) in enumerate(zip(verdicts, gold)):
        run.add(_result(f"f{index}", verdict, label, model=model))
    return run


class TestMajorityVote:
    def test_unanimous_true(self):
        assert majority_vote([True, True, True, True]) is Verdict.TRUE

    def test_three_to_one(self):
        assert majority_vote([True, True, True, False]) is Verdict.TRUE
        assert majority_vote([False, False, False, True]) is Verdict.FALSE

    def test_tie(self):
        assert majority_vote([True, True, False, False]) is Verdict.TIE

    def test_invalid_votes_ignored(self):
        assert majority_vote([True, True, True, None]) is Verdict.TRUE
        assert majority_vote([True, None, False, None]) is Verdict.TIE

    def test_majority_threshold_not_met_falls_back_to_plurality(self):
        # 2 true vs 1 false with one abstention: no >=3 majority, not a tie.
        assert majority_vote([True, True, False, None]) is Verdict.TRUE


class TestAggregation:
    @pytest.fixture
    def runs(self):
        gold = [True, True, False, True]
        return {
            "m1": _run("m1", [Verdict.TRUE, Verdict.TRUE, Verdict.FALSE, Verdict.TRUE], gold),
            "m2": _run("m2", [Verdict.TRUE, Verdict.TRUE, Verdict.TRUE, Verdict.FALSE], gold),
            "m3": _run("m3", [Verdict.TRUE, Verdict.FALSE, Verdict.FALSE, Verdict.TRUE], gold),
            "m4": _run("m4", [Verdict.TRUE, Verdict.FALSE, Verdict.TRUE, Verdict.FALSE], gold),
        }

    def test_aggregate_without_judge(self, runs):
        consensus = MajorityVoteConsensus().aggregate(runs)
        assert len(consensus) == 4
        by_fact = {outcome.fact_id: outcome for outcome in consensus.outcomes}
        assert by_fact["f0"].verdict is Verdict.TRUE
        assert by_fact["f1"].verdict is Verdict.TIE
        assert by_fact["f2"].verdict is Verdict.TIE
        assert by_fact["f3"].verdict is Verdict.TIE
        assert consensus.tie_rate() == pytest.approx(0.75)

    def test_aggregate_with_judge_resolves_ties(self, runs):
        consensus = MajorityVoteConsensus().aggregate(
            runs, judge_fn=lambda fact_id: True, judge_name="always-true"
        )
        assert all(outcome.verdict is not Verdict.TIE for outcome in consensus.outcomes)
        arbitrated = [outcome for outcome in consensus.outcomes if outcome.arbitrated]
        assert len(arbitrated) == 3

    def test_judge_returning_none_keeps_tie(self, runs):
        consensus = MajorityVoteConsensus().aggregate(
            runs, judge_fn=lambda fact_id: None, judge_name="silent"
        )
        assert any(outcome.verdict is Verdict.TIE for outcome in consensus.outcomes)

    def test_majority_labels(self, runs):
        consensus = MajorityVoteConsensus().aggregate(runs)
        labels = consensus.majority_labels()
        assert labels["f0"] is True
        assert labels["f1"] is None

    def test_outcome_correctness(self, runs):
        consensus = MajorityVoteConsensus().aggregate(runs)
        outcome = next(o for o in consensus.outcomes if o.fact_id == "f0")
        assert outcome.is_correct is True
        tie = next(o for o in consensus.outcomes if o.verdict is Verdict.TIE)
        assert tie.is_correct is None

    def test_empty_runs_rejected(self):
        with pytest.raises(ValueError):
            MajorityVoteConsensus().aggregate({})

    def test_alignment_scores(self, runs):
        aggregator = MajorityVoteConsensus()
        consensus = aggregator.aggregate(runs)
        scores = aggregator.alignment_scores(runs, consensus)
        assert set(scores) == set(runs)
        # Only f0 has a strict majority, which every model agrees with.
        assert all(score == 1.0 for score in scores.values())

    def test_consensus_alignment_direct(self, runs):
        majority = {"f0": True, "f1": False, "f2": False, "f3": True}
        score = consensus_alignment(runs["m1"], majority)
        assert score == pytest.approx(3 / 4)

    def test_alignment_empty_run(self):
        empty = ValidationRun(method="dka", model="m", dataset="d")
        assert consensus_alignment(empty, {"f0": True}) == 0.0
