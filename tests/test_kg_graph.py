"""Tests for the indexed triple store and its path queries."""

import pytest

from repro.kg import KnowledgeGraph, Triple


@pytest.fixture
def small_graph():
    graph = KnowledgeGraph("test")
    triples = [
        Triple("alice", "spouse", "bob"),
        Triple("alice", "birthPlace", "springfield"),
        Triple("bob", "birthPlace", "springfield"),
        Triple("springfield", "locatedIn", "freedonia"),
        Triple("alice", "employer", "acme"),
        Triple("bob", "employer", "acme"),
        Triple("carol", "birthPlace", "shelbyville"),
    ]
    graph.add_all(triples)
    return graph


class TestMutation:
    def test_add_returns_true_then_false(self):
        graph = KnowledgeGraph()
        triple = Triple("a", "p", "b")
        assert graph.add(triple) is True
        assert graph.add(triple) is False
        assert len(graph) == 1

    def test_remove(self, small_graph):
        triple = Triple("alice", "spouse", "bob")
        assert small_graph.remove(triple) is True
        assert triple not in small_graph
        assert small_graph.remove(triple) is False

    def test_remove_updates_indexes(self, small_graph):
        small_graph.remove(Triple("alice", "employer", "acme"))
        assert "acme" not in small_graph.objects("alice", "employer")
        assert ("employer", "acme") not in small_graph.out_edges("alice")


class TestQueries:
    def test_contains(self, small_graph):
        assert small_graph.contains("alice", "spouse", "bob")
        assert not small_graph.contains("bob", "spouse", "alice")

    def test_objects_and_subjects(self, small_graph):
        assert small_graph.objects("alice", "birthPlace") == ["springfield"]
        assert small_graph.subjects("birthPlace", "springfield") == ["alice", "bob"]

    def test_predicates_between(self, small_graph):
        assert small_graph.predicates_between("alice", "bob") == ["spouse"]

    def test_triples_with_predicate(self, small_graph):
        triples = small_graph.triples_with_predicate("birthPlace")
        assert len(triples) == 3
        assert all(t.predicate == "birthPlace" for t in triples)

    def test_degree_counts_both_directions(self, small_graph):
        # springfield: 2 incoming birthPlace + 1 outgoing locatedIn.
        assert small_graph.degree("springfield") == 3

    def test_nodes_cover_subjects_and_objects(self, small_graph):
        nodes = small_graph.nodes()
        assert "freedonia" in nodes and "alice" in nodes

    def test_neighbors_have_directions(self, small_graph):
        steps = small_graph.neighbors("springfield")
        directions = {(predicate, direction) for predicate, direction, __ in steps}
        assert ("locatedIn", +1) in directions
        assert ("birthPlace", -1) in directions


class TestPaths:
    def test_finds_indirect_path(self, small_graph):
        paths = small_graph.find_paths("alice", "bob", max_length=2)
        signatures = {KnowledgeGraph.path_signature(path) for path in paths}
        # alice -birthPlace-> springfield <-birthPlace- bob
        assert (("birthPlace", 1), ("birthPlace", -1)) in signatures

    def test_exclude_direct_edge(self, small_graph):
        paths = small_graph.find_paths(
            "alice", "bob", max_length=1, exclude=Triple("alice", "spouse", "bob")
        )
        assert paths == []

    def test_direct_edge_found_when_not_excluded(self, small_graph):
        paths = small_graph.find_paths("alice", "bob", max_length=1)
        assert (("spouse", 1),) in {KnowledgeGraph.path_signature(p) for p in paths}

    def test_same_node_returns_empty(self, small_graph):
        assert small_graph.find_paths("alice", "alice") == []

    def test_max_paths_cap(self, small_graph):
        paths = small_graph.find_paths("alice", "bob", max_length=3, max_paths=1)
        assert len(paths) == 1

    def test_paths_are_simple(self, small_graph):
        for path in small_graph.find_paths("alice", "freedonia", max_length=3):
            nodes = [node for __, ___, node in path]
            assert len(nodes) == len(set(nodes))


class TestExports:
    def test_to_networkx_preserves_edge_count(self, small_graph):
        graph = small_graph.to_networkx()
        assert graph.number_of_edges() == len(small_graph)

    def test_copy_is_independent(self, small_graph):
        clone = small_graph.copy()
        clone.add(Triple("new", "p", "node"))
        assert len(clone) == len(small_graph) + 1

    def test_iteration_sorted(self, small_graph):
        listed = list(small_graph)
        assert listed == sorted(listed)
