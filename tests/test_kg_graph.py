"""Tests for the indexed triple store and its path queries."""

import random
from collections import deque

import pytest

from repro.kg import KnowledgeGraph, Triple


def reference_find_paths(graph, source, target, max_length=3, exclude=None, max_paths=200):
    """The seed's unidirectional BFS enumeration, kept as the oracle for the
    pruned meet-in-the-middle implementation."""
    if source == target:
        return []
    excluded_edge = exclude.as_tuple() if exclude is not None else None
    paths = []
    queue = deque()
    queue.append((source, (), frozenset({source})))
    while queue and len(paths) < max_paths:
        node, path, visited = queue.popleft()
        if len(path) >= max_length:
            continue
        for predicate, direction, neighbor in graph.neighbors(node):
            if neighbor in visited:
                continue
            if excluded_edge is not None:
                forward = (node, predicate, neighbor)
                backward = (neighbor, predicate, node)
                if direction == +1 and forward == excluded_edge:
                    continue
                if direction == -1 and backward == excluded_edge:
                    continue
            new_path = path + ((predicate, direction, neighbor),)
            if neighbor == target:
                paths.append(new_path)
                if len(paths) >= max_paths:
                    break
                continue
            queue.append((neighbor, new_path, visited | {neighbor}))
    return paths


@pytest.fixture
def small_graph():
    graph = KnowledgeGraph("test")
    triples = [
        Triple("alice", "spouse", "bob"),
        Triple("alice", "birthPlace", "springfield"),
        Triple("bob", "birthPlace", "springfield"),
        Triple("springfield", "locatedIn", "freedonia"),
        Triple("alice", "employer", "acme"),
        Triple("bob", "employer", "acme"),
        Triple("carol", "birthPlace", "shelbyville"),
    ]
    graph.add_all(triples)
    return graph


class TestMutation:
    def test_add_returns_true_then_false(self):
        graph = KnowledgeGraph()
        triple = Triple("a", "p", "b")
        assert graph.add(triple) is True
        assert graph.add(triple) is False
        assert len(graph) == 1

    def test_remove(self, small_graph):
        triple = Triple("alice", "spouse", "bob")
        assert small_graph.remove(triple) is True
        assert triple not in small_graph
        assert small_graph.remove(triple) is False

    def test_remove_updates_indexes(self, small_graph):
        small_graph.remove(Triple("alice", "employer", "acme"))
        assert "acme" not in small_graph.objects("alice", "employer")
        assert ("employer", "acme") not in small_graph.out_edges("alice")

    def test_remove_leaves_no_ghost_predicates(self, small_graph):
        small_graph.remove(Triple("alice", "spouse", "bob"))
        assert "spouse" not in small_graph.predicates()
        assert small_graph.predicates_between("alice", "bob") == []

    def test_remove_leaves_no_ghost_nodes(self, small_graph):
        # freedonia participates in exactly one triple; removing it must
        # remove the node from every report.
        small_graph.remove(Triple("springfield", "locatedIn", "freedonia"))
        assert "freedonia" not in small_graph.nodes()
        assert "locatedIn" not in small_graph.predicates()
        assert small_graph.degree("freedonia") == 0

    def test_readd_after_remove(self, small_graph):
        triple = Triple("alice", "spouse", "bob")
        small_graph.remove(triple)
        assert small_graph.add(triple) is True
        assert small_graph.contains("alice", "spouse", "bob")
        assert ("spouse", "bob") in small_graph.out_edges("alice")


class TestQueries:
    def test_contains(self, small_graph):
        assert small_graph.contains("alice", "spouse", "bob")
        assert not small_graph.contains("bob", "spouse", "alice")

    def test_objects_and_subjects(self, small_graph):
        assert small_graph.objects("alice", "birthPlace") == ["springfield"]
        assert small_graph.subjects("birthPlace", "springfield") == ["alice", "bob"]

    def test_predicates_between(self, small_graph):
        assert small_graph.predicates_between("alice", "bob") == ["spouse"]

    def test_triples_with_predicate(self, small_graph):
        triples = small_graph.triples_with_predicate("birthPlace")
        assert len(triples) == 3
        assert all(t.predicate == "birthPlace" for t in triples)

    def test_degree_counts_both_directions(self, small_graph):
        # springfield: 2 incoming birthPlace + 1 outgoing locatedIn.
        assert small_graph.degree("springfield") == 3

    def test_nodes_cover_subjects_and_objects(self, small_graph):
        nodes = small_graph.nodes()
        assert "freedonia" in nodes and "alice" in nodes

    def test_neighbors_have_directions(self, small_graph):
        steps = small_graph.neighbors("springfield")
        directions = {(predicate, direction) for predicate, direction, __ in steps}
        assert ("locatedIn", +1) in directions
        assert ("birthPlace", -1) in directions


class TestPaths:
    def test_finds_indirect_path(self, small_graph):
        paths = small_graph.find_paths("alice", "bob", max_length=2)
        signatures = {KnowledgeGraph.path_signature(path) for path in paths}
        # alice -birthPlace-> springfield <-birthPlace- bob
        assert (("birthPlace", 1), ("birthPlace", -1)) in signatures

    def test_exclude_direct_edge(self, small_graph):
        paths = small_graph.find_paths(
            "alice", "bob", max_length=1, exclude=Triple("alice", "spouse", "bob")
        )
        assert paths == []

    def test_direct_edge_found_when_not_excluded(self, small_graph):
        paths = small_graph.find_paths("alice", "bob", max_length=1)
        assert (("spouse", 1),) in {KnowledgeGraph.path_signature(p) for p in paths}

    def test_same_node_returns_empty(self, small_graph):
        assert small_graph.find_paths("alice", "alice") == []

    def test_max_paths_cap(self, small_graph):
        paths = small_graph.find_paths("alice", "bob", max_length=3, max_paths=1)
        assert len(paths) == 1

    def test_paths_are_simple(self, small_graph):
        for path in small_graph.find_paths("alice", "freedonia", max_length=3):
            nodes = [node for __, ___, node in path]
            assert len(nodes) == len(set(nodes))


class TestPathEquivalence:
    """The pruned bidirectional search must reproduce the seed BFS exactly."""

    @pytest.fixture()
    def random_graph(self):
        rng = random.Random(83)
        graph = KnowledgeGraph("random")
        nodes = [f"n{i}" for i in range(36)]
        predicates = ["knows", "near", "partOf", "cites"]
        while len(graph) < 150:
            graph.add(
                Triple(rng.choice(nodes), rng.choice(predicates), rng.choice(nodes))
            )
        return graph

    def test_matches_reference_on_random_graph(self, random_graph):
        rng = random.Random(7)
        nodes = random_graph.nodes()
        checked = 0
        for __ in range(40):
            source, target = rng.sample(nodes, 2)
            for max_length in (1, 2, 3):
                expected = reference_find_paths(
                    random_graph, source, target, max_length=max_length, max_paths=10_000
                )
                actual = random_graph.find_paths(
                    source, target, max_length=max_length, max_paths=10_000
                )
                assert actual == expected
                checked += len(expected)
        assert checked > 100  # the comparison actually exercised paths

    def test_matches_reference_with_exclusion(self, random_graph):
        rng = random.Random(11)
        for triple in list(random_graph)[::17]:
            expected = reference_find_paths(
                random_graph,
                triple.subject,
                triple.object,
                max_length=3,
                exclude=triple,
                max_paths=10_000,
            )
            actual = random_graph.find_paths(
                triple.subject, triple.object, max_length=3, exclude=triple, max_paths=10_000
            )
            assert actual == expected

    def test_matches_reference_under_binding_cap(self, random_graph):
        # When the cap truncates, the kept prefix (content *and* order) must
        # still match the seed enumeration.
        nodes = random_graph.nodes()
        rng = random.Random(23)
        for __ in range(20):
            source, target = rng.sample(nodes, 2)
            expected = reference_find_paths(
                random_graph, source, target, max_length=3, max_paths=5
            )
            actual = random_graph.find_paths(source, target, max_length=3, max_paths=5)
            assert actual == expected


class TestExports:
    def test_to_networkx_preserves_edge_count(self, small_graph):
        graph = small_graph.to_networkx()
        assert graph.number_of_edges() == len(small_graph)

    def test_copy_is_independent(self, small_graph):
        clone = small_graph.copy()
        clone.add(Triple("new", "p", "node"))
        assert len(clone) == len(small_graph) + 1

    def test_iteration_sorted(self, small_graph):
        listed = list(small_graph)
        assert listed == sorted(listed)
