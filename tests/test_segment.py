"""Tests for the paged binary storage engine and the log durability fixes.

Covers the crash-safety contract end to end:

* segment round-trips are byte-identical to JSONL (``state_digest``);
* truncating a saved segment at *any* byte offset either recovers the
  longest valid batch prefix or raises the typed ``CorruptSegmentError``
  — never silently-wrong state (hypothesis property plus fixed fixtures
  for a torn final record and a truncated segment);
* mid-file corruption behind a valid footer raises on read;
* ``MutationLog.save`` (and the segment writer) are crash-atomic: a
  simulated crash mid-write leaves the previous log intact;
* ``MutationLog.load`` rejects non-monotonic / below-floor epochs with
  the offending line number;
* ``Mutation.from_json`` requires ``doc_id`` and ``text`` on
  ``add_document`` records instead of defaulting them to ``""``.
"""

from __future__ import annotations

import json
import os
import random
from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.retrieval.corpus import Document
from repro.store import (
    CorruptSegmentError,
    Mutation,
    MutationLog,
    PageCache,
    SegmentBackedLog,
    SegmentReader,
    ShardedStore,
    VersionedKnowledgeStore,
    atomic_write,
)


def _document(index: int, text: str = "") -> Document:
    return Document(
        doc_id=f"doc{index}",
        url=f"https://example.org/{index}",
        title=f"Doc {index}",
        text=text or f"evidence text {index}",
        source="test",
        fact_id=f"fact{index % 5}",
    )


def _grow_store(batches: int, rng_seed: int = 11, batch_size: int = 4) -> VersionedKnowledgeStore:
    """A store with a mixed add/remove/document history of ``batches`` epochs."""
    rng = random.Random(rng_seed)
    store = VersionedKnowledgeStore(name="seg-test")
    live: List[tuple] = []
    doc_index = 0
    for _ in range(batches):
        batch: List[Mutation] = []
        for _ in range(batch_size):
            roll = rng.random()
            if roll < 0.6 or not live:
                triple = (f"s{rng.randrange(25)}", f"p{rng.randrange(3)}", f"o{rng.randrange(25)}")
                batch.append(Mutation.add_triple(*triple))
                live.append(triple)
            elif roll < 0.8:
                doc_index += 1
                batch.append(Mutation.add_document(_document(doc_index)))
            else:
                victim = live.pop(rng.randrange(len(live)))
                if store.graph.contains(*victim) and not any(
                    m.op == "remove_triple" and m.triple.as_tuple() == victim for m in batch
                ):
                    batch.append(Mutation.remove_triple(*victim))
                else:
                    batch.append(Mutation.add_triple(*victim))
                    live.append(victim)
        store.apply(batch)
    return store


# ---------------------------------------------------------------------------
# round-trip parity


def test_segment_round_trip_digest_parity(tmp_path):
    store = _grow_store(80)
    jsonl_path = str(tmp_path / "log.jsonl")
    segment_path = str(tmp_path / "log.seg")
    store.save(jsonl_path, format="jsonl")
    store.save(segment_path, format="segment", checkpoint_interval=50)

    via_jsonl = VersionedKnowledgeStore.load(jsonl_path)
    via_segment = VersionedKnowledgeStore.load(segment_path)
    assert via_segment.epoch == via_jsonl.epoch == store.epoch
    assert via_segment.state_digest() == via_jsonl.state_digest() == store.state_digest()


def test_segment_smaller_than_jsonl(tmp_path):
    store = _grow_store(120)
    jsonl_path = str(tmp_path / "log.jsonl")
    segment_path = str(tmp_path / "log.seg")
    store.save(jsonl_path, format="jsonl")
    store.save(segment_path, format="segment")
    assert os.path.getsize(segment_path) < os.path.getsize(jsonl_path)


def test_historical_snapshot_parity(tmp_path):
    store = _grow_store(60)
    segment_path = str(tmp_path / "log.seg")
    store.save(segment_path, format="segment", checkpoint_interval=40)
    via_segment = VersionedKnowledgeStore.load(segment_path)
    for epoch in (1, store.epoch // 2, store.epoch - 1):
        expected = store.snapshot(epoch)
        got = via_segment.snapshot(epoch)
        assert got.graph.state_digest() == expected.graph.state_digest()
        assert [d.doc_id for d in got.corpus] == [d.doc_id for d in expected.corpus]


def test_segment_load_seeks_instead_of_replaying(tmp_path):
    """Cold start restores the head checkpoint: no record block is decoded."""
    store = _grow_store(50)
    segment_path = str(tmp_path / "log.seg")
    store.save(segment_path, format="segment", checkpoint_interval=10_000)
    loaded = VersionedKnowledgeStore.load(segment_path)
    assert isinstance(loaded.log, SegmentBackedLog)
    stats = loaded.log.reader.page_cache.stats()
    assert stats["misses"] == 0  # head checkpoint covered the whole history
    assert loaded.state_digest() == store.state_digest()
    # The restored graph hydrates its derived indexes lazily.
    assert not loaded.graph.hydrated
    assert len(loaded.graph) == len(store.graph)


def test_incremental_save_appends_tail(tmp_path):
    store = _grow_store(30)
    segment_path = str(tmp_path / "log.seg")
    store.save(segment_path, format="segment")
    loaded = VersionedKnowledgeStore.load(segment_path)
    loaded.apply([Mutation.add_triple("tail", "p0", "tail-object")])
    loaded.apply([Mutation.add_document(_document(999))])
    second = str(tmp_path / "log2.seg")
    loaded.save(second)  # sticks to segment format, incremental path
    reloaded = VersionedKnowledgeStore.load(second)
    assert reloaded.epoch == loaded.epoch
    assert reloaded.state_digest() == loaded.state_digest()


def test_compact_keeps_segment_format(tmp_path):
    store = _grow_store(40)
    segment_path = str(tmp_path / "log.seg")
    store.save(segment_path, format="segment")
    loaded = VersionedKnowledgeStore.load(segment_path)
    loaded.compact()
    loaded.save(segment_path)
    reloaded = VersionedKnowledgeStore.load(segment_path)
    assert isinstance(reloaded.log, SegmentBackedLog)
    assert reloaded.log.floor_epoch == loaded.epoch
    assert reloaded.state_digest() == loaded.state_digest()


def test_sharded_store_segment_round_trip(tmp_path):
    rng = random.Random(5)
    fleet = ShardedStore.partition(
        triples=[],
        documents=[],
        num_shards=2,
    )
    fleet.apply(
        [Mutation.add_triple(f"e{rng.randrange(20)}", "p", f"e{rng.randrange(20)}") for _ in range(30)]
    )
    prefix = str(tmp_path / "fleet")
    fleet.save(prefix, format="segment")
    loaded = ShardedStore.load(prefix, num_shards=2)
    assert loaded.state_digest() == fleet.state_digest()
    assert all(isinstance(shard.log, SegmentBackedLog) for shard in loaded.shards)


def test_replication_from_segment_log_shares_reader(tmp_path):
    from repro.store import ReplicaGroup

    store = _grow_store(25)
    segment_path = str(tmp_path / "log.seg")
    store.save(segment_path, format="segment")
    primary = VersionedKnowledgeStore.load(segment_path)
    group = ReplicaGroup.replicate(primary, 3, include_index=True)
    assert group.verify() == primary.state_digest()
    replica_log = group.stores[1].log
    assert isinstance(replica_log, SegmentBackedLog)
    assert replica_log.reader is primary.log.reader  # shared page cache


def test_service_ingest_on_segment_loaded_store(tmp_path):
    """A segment-loaded store keeps serving mutations (quiesce/ingest path)."""
    store = _grow_store(20)
    segment_path = str(tmp_path / "log.seg")
    store.save(segment_path, format="segment")
    loaded = VersionedKnowledgeStore.load(segment_path)
    seen = []
    loaded.subscribe(lambda epoch, batch: seen.append((epoch, len(batch))))
    report = loaded.apply([Mutation.add_triple("svc", "p0", "obj")])
    assert report.epoch == store.epoch + 1
    assert seen == [(report.epoch, 1)]
    assert loaded.snapshot().epoch == report.epoch


# ---------------------------------------------------------------------------
# crash recovery: truncation fixtures + hypothesis property


def _saved_segment(tmp_path, batches: int = 24, block_size: int = 512) -> tuple:
    store = _grow_store(batches, rng_seed=3)
    path = str(tmp_path / "crash.seg")
    store.save(path, format="segment", checkpoint_interval=48, block_size=block_size)
    with open(path, "rb") as handle:
        data = handle.read()
    return store, path, data


def _assert_valid_prefix(store, truncated_path) -> None:
    """The recovered log must be an exact batch prefix of the original."""
    try:
        reader = SegmentReader.open(truncated_path)
    except CorruptSegmentError:
        return  # typed failure is an accepted outcome
    log = SegmentBackedLog(reader)
    try:
        recovered = log.batches()
        replayed = VersionedKnowledgeStore.replay(log)
    except CorruptSegmentError:
        reader.close()
        return
    original = store.log.batches()
    assert recovered == original[: len(recovered)]
    expected_epoch = recovered[-1][0] if recovered else log.floor_epoch
    assert replayed.epoch == expected_epoch
    # Recovered state must equal the genuine historical state at that epoch.
    if recovered:
        assert (
            replayed.graph.state_digest()
            == store.snapshot(expected_epoch).graph.state_digest()
        )
    reader.close()


def test_torn_final_record_truncates_to_batch_prefix(tmp_path):
    store, path, data = _saved_segment(tmp_path)
    # Cut mid-way through the final record block's payload: the tail block
    # fails its CRC and the last intact batch boundary wins.
    reader = SegmentReader.open(path)
    final_block = reader.record_blocks[-1]
    reader.close()
    torn = str(tmp_path / "torn.seg")
    with open(torn, "wb") as handle:
        handle.write(data[: final_block.offset + 10])
    _assert_valid_prefix(store, torn)
    recovered = SegmentReader.open(torn)
    assert recovered.recovered
    assert recovered.max_epoch < store.epoch
    recovered.close()


def test_truncated_segment_missing_footer_recovers(tmp_path):
    store, path, data = _saved_segment(tmp_path)
    # Drop the footer + trailer entirely: scan recovery must index every
    # intact block and still replay to the full final state.
    reader = SegmentReader.open(path)
    blocks_end = max(b.offset + 18 + b.comp_len for b in reader.blocks)
    reader.close()
    headless = str(tmp_path / "nofooter.seg")
    with open(headless, "wb") as handle:
        handle.write(data[:blocks_end])
    recovered = SegmentReader.open(headless)
    assert recovered.recovered
    log = SegmentBackedLog(recovered)
    assert log.batches() == store.log.batches()
    assert VersionedKnowledgeStore.replay(log).state_digest() == store.state_digest()


def test_empty_and_garbage_files_raise_typed_error(tmp_path):
    empty = tmp_path / "empty.seg"
    empty.write_bytes(b"")
    with pytest.raises(CorruptSegmentError):
        SegmentReader.open(str(empty))
    garbage = tmp_path / "garbage.seg"
    garbage.write_bytes(b"RSEGMT01" + os.urandom(64))
    with pytest.raises(CorruptSegmentError):
        SegmentReader.open(str(garbage))


def test_midfile_bitflip_raises_on_read(tmp_path):
    store, path, data = _saved_segment(tmp_path)
    reader = SegmentReader.open(path)
    victim = reader.record_blocks[1]
    reader.close()
    flipped = bytearray(data)
    flipped[victim.offset + _headersize() + 2] ^= 0xFF
    bad = str(tmp_path / "flip.seg")
    with open(bad, "wb") as handle:
        handle.write(bytes(flipped))
    damaged = SegmentReader.open(bad)  # footer still valid: opens fine
    with pytest.raises(CorruptSegmentError):
        list(SegmentBackedLog(damaged))


def _headersize() -> int:
    from repro.store.segment import _BLOCK_HEADER

    return _BLOCK_HEADER.size


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_truncation_at_any_offset_is_prefix_or_typed_error(tmp_path_factory, data):
    """Core crash-safety property: byte-level truncation never yields
    silently-wrong state."""
    base = tmp_path_factory.mktemp("hyp")
    store, _, payload = _saved_segment(base, batches=12, block_size=384)
    cut = data.draw(st.integers(min_value=0, max_value=len(payload) - 1))
    truncated = str(base / f"cut{cut}.seg")
    with open(truncated, "wb") as handle:
        handle.write(payload[:cut])
    _assert_valid_prefix(store, truncated)


def test_page_cache_eviction_and_stats(tmp_path):
    store, path, _ = _saved_segment(tmp_path, batches=40, block_size=384)
    cache = PageCache(capacity=2)
    reader = SegmentReader.open(path, page_cache=cache)
    log = SegmentBackedLog(reader)
    assert log.batches() == store.log.batches()  # full scan through 2 pages
    stats = cache.stats()
    assert stats["resident"] <= 2
    assert stats["misses"] >= len(reader.record_blocks)
    assert stats["evictions"] > 0
    # Re-reading the hottest tail blocks now hits.
    list(reader.iter_records(after=store.epoch - 2))
    assert cache.stats()["hits"] > 0


# ---------------------------------------------------------------------------
# satellite: crash-atomic save


def test_jsonl_save_is_crash_atomic(tmp_path, monkeypatch):
    path = str(tmp_path / "log.jsonl")
    first = _grow_store(5)
    first.save(path, format="jsonl")
    before = open(path, encoding="utf-8").read()

    class Boom(RuntimeError):
        pass

    # Simulate the process dying mid-write: fsync is the last step before
    # the atomic rename, so failing there means the rename never happens.
    monkeypatch.setattr(os, "fsync", lambda fd: (_ for _ in ()).throw(Boom()))
    second = _grow_store(9, rng_seed=99)
    with pytest.raises(Boom):
        second.save(path, format="jsonl")
    monkeypatch.undo()
    assert open(path, encoding="utf-8").read() == before
    assert not [p for p in os.listdir(tmp_path) if ".tmp." in p]


def test_segment_save_is_crash_atomic(tmp_path, monkeypatch):
    path = str(tmp_path / "log.seg")
    first = _grow_store(5)
    first.save(path, format="segment")
    before = open(path, "rb").read()

    class Boom(RuntimeError):
        pass

    monkeypatch.setattr(os, "fsync", lambda fd: (_ for _ in ()).throw(Boom()))
    second = _grow_store(9, rng_seed=99)
    with pytest.raises(Boom):
        second.save(path, format="segment")
    monkeypatch.undo()
    assert open(path, "rb").read() == before
    assert not [p for p in os.listdir(tmp_path) if ".tmp." in p]


def test_atomic_write_cleans_up_on_error(tmp_path):
    target = str(tmp_path / "out.txt")
    with open(target, "w", encoding="utf-8") as handle:
        handle.write("original")
    with pytest.raises(ValueError):
        with atomic_write(target) as handle:
            handle.write("partial")
            raise ValueError("boom")
    assert open(target, encoding="utf-8").read() == "original"
    assert os.listdir(tmp_path) == ["out.txt"]


# ---------------------------------------------------------------------------
# satellite: load-time epoch validation


def _write_jsonl(path, records) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


def test_load_rejects_non_monotonic_epochs(tmp_path):
    path = str(tmp_path / "bad.jsonl")
    _write_jsonl(
        path,
        [
            {"kind": "header", "version": 1, "floor_epoch": 0},
            {"op": "add_triple", "subject": "a", "predicate": "p", "object": "b", "epoch": 2},
            {"op": "add_triple", "subject": "c", "predicate": "p", "object": "d", "epoch": 1},
        ],
    )
    with pytest.raises(ValueError, match=r"bad\.jsonl:3.*not grouped-monotonic"):
        MutationLog.load(path)


def test_load_rejects_epoch_below_floor(tmp_path):
    path = str(tmp_path / "floor.jsonl")
    _write_jsonl(
        path,
        [
            {"kind": "header", "version": 1, "floor_epoch": 10},
            {"op": "add_triple", "subject": "a", "predicate": "p", "object": "b", "epoch": 3},
        ],
    )
    with pytest.raises(ValueError, match=r"floor\.jsonl:2.*below the log floor 10"):
        MutationLog.load(path)


def test_load_rejects_missing_epoch(tmp_path):
    path = str(tmp_path / "noepoch.jsonl")
    _write_jsonl(
        path,
        [{"op": "add_triple", "subject": "a", "predicate": "p", "object": "b"}],
    )
    with pytest.raises(ValueError, match=r"noepoch\.jsonl:1.*integer 'epoch'"):
        MutationLog.load(path)


def test_load_accepts_grouped_equal_epochs(tmp_path):
    path = str(tmp_path / "ok.jsonl")
    _write_jsonl(
        path,
        [
            {"kind": "header", "version": 1, "floor_epoch": 0},
            {"op": "add_triple", "subject": "a", "predicate": "p", "object": "b", "epoch": 1},
            {"op": "add_triple", "subject": "c", "predicate": "p", "object": "d", "epoch": 1},
            {"op": "add_triple", "subject": "e", "predicate": "p", "object": "f", "epoch": 2},
        ],
    )
    log, _ = MutationLog.load(path)
    assert [epoch for epoch, _ in log.batches()] == [1, 2]


# ---------------------------------------------------------------------------
# satellite: strict add_document deserialisation


def test_from_json_requires_doc_id():
    with pytest.raises(ValueError, match="doc_id"):
        Mutation.from_json({"op": "add_document", "document": {"text": "body"}})


def test_from_json_requires_text_presence():
    with pytest.raises(ValueError, match="text"):
        Mutation.from_json({"op": "add_document", "document": {"doc_id": "d1"}})


def test_from_json_accepts_empty_text():
    # ~13% of real extractions are legitimately empty: presence is
    # required, emptiness is allowed.
    mutation = Mutation.from_json(
        {"op": "add_document", "document": {"doc_id": "d1", "text": ""}}
    )
    assert mutation.document.doc_id == "d1"
    assert mutation.document.text == ""


def test_from_json_round_trips_full_document():
    original = Mutation.add_document(_document(7, text="full text"))
    assert Mutation.from_json(original.to_json()) == original
