"""Tests for the FactBench / YAGO / DBpedia dataset builders and FactDataset."""

import pytest

from repro.datasets import (
    FactDataset,
    build_dbpedia,
    build_factbench,
    build_yago,
    compute_statistics,
    predicate_alias_pool,
    statistics_table,
)


class TestFactBench:
    def test_size_scales(self, factbench_small):
        # scale=0.02 of 2,800 => 56 facts
        assert len(factbench_small) == 56

    def test_gold_accuracy_near_054(self, factbench_small):
        assert abs(factbench_small.gold_accuracy() - 0.54) < 0.05

    def test_predicate_count_at_most_ten(self, factbench_small):
        assert 1 < factbench_small.num_predicates() <= 10

    def test_encoded_with_dbpedia_iris(self, factbench_small):
        fact = factbench_small[0]
        assert fact.triple.subject.startswith("http://dbpedia.org/resource/")
        assert fact.triple.predicate.startswith("http://dbpedia.org/ontology/")

    def test_negatives_have_strategy(self, factbench_small):
        negatives = [fact for fact in factbench_small if not fact.label]
        assert negatives
        assert all(fact.negative_strategy for fact in negatives)

    def test_positives_have_no_strategy(self, factbench_small):
        assert all(fact.negative_strategy is None for fact in factbench_small if fact.label)

    def test_deterministic(self, world):
        first = build_factbench(world, scale=0.01)
        second = build_factbench(world, scale=0.01)
        assert [f.fact_id for f in first] == [f.fact_id for f in second]
        assert [f.label for f in first] == [f.label for f in second]

    def test_fact_ids_unique(self, factbench_small):
        ids = [fact.fact_id for fact in factbench_small]
        assert len(set(ids)) == len(ids)


class TestYago:
    def test_gold_accuracy_extremely_high(self, yago_small):
        assert yago_small.gold_accuracy() >= 0.95

    def test_yago_predicate_naming(self, yago_small):
        names = {fact.predicate_name for fact in yago_small}
        assert names & {"wasBornIn", "isCitizenOf", "isMarriedTo", "playsFor", "hasWonPrize"}

    def test_yago_encoding_uses_brackets(self, yago_small):
        fact = yago_small[0]
        assert fact.triple.subject.startswith("<") and fact.triple.subject.endswith(">")

    def test_canonical_predicate_maps_back_to_schema(self, yago_small):
        from repro.worldmodel import RELATIONS

        for fact in yago_small:
            assert fact.base_predicate() in RELATIONS


class TestDBpedia:
    def test_gold_accuracy_near_085(self, dbpedia_small):
        assert abs(dbpedia_small.gold_accuracy() - 0.85) < 0.07

    def test_schema_diversity(self, dbpedia_small):
        # Many more distinct predicate labels than base relations are in play.
        assert dbpedia_small.num_predicates() > 26 / 2

    def test_alias_pool_is_deterministic_and_unique(self):
        pool = predicate_alias_pool("birthPlace", 40)
        assert pool == predicate_alias_pool("birthPlace", 40)
        assert len(pool) == len(set(pool))
        assert "birthPlace" in pool

    def test_topics_assigned(self, dbpedia_small):
        topics = dbpedia_small.topic_distribution()
        assert len(topics) >= 2


class TestFactDataset:
    def test_duplicate_ids_rejected(self, factbench_small):
        fact = factbench_small[0]
        with pytest.raises(ValueError):
            FactDataset("broken", [fact, fact])

    def test_get_by_id(self, factbench_small):
        fact = factbench_small[3]
        assert factbench_small.get(fact.fact_id) == fact
        assert factbench_small.get("missing") is None

    def test_sample_preserves_balance(self, factbench_small):
        sampled = factbench_small.sample(20, seed=1)
        assert len(sampled) == 20
        assert abs(sampled.gold_accuracy() - factbench_small.gold_accuracy()) < 0.15

    def test_sample_larger_than_dataset_returns_all(self, factbench_small):
        assert len(factbench_small.sample(10_000)) == len(factbench_small)

    def test_split_partitions(self, factbench_small):
        train, test = factbench_small.split(0.7, seed=2)
        assert len(train) + len(test) == len(factbench_small)
        assert not (set(f.fact_id for f in train) & set(f.fact_id for f in test))

    def test_split_invalid_fraction(self, factbench_small):
        with pytest.raises(ValueError):
            factbench_small.split(1.5)

    def test_filter(self, factbench_small):
        positives = factbench_small.filter(lambda fact: fact.label)
        assert len(positives) == factbench_small.label_counts()[True]

    def test_by_predicate_groups_cover_everything(self, factbench_small):
        grouped = factbench_small.by_predicate()
        assert sum(len(group) for group in grouped.values()) == len(factbench_small)

    def test_summary_keys(self, factbench_small):
        summary = factbench_small.summary()
        assert set(summary) == {
            "num_facts",
            "num_predicates",
            "avg_facts_per_entity",
            "gold_accuracy",
        }


class TestStatistics:
    def test_compute_statistics_matches_summary(self, factbench_small):
        stats = compute_statistics(factbench_small)
        assert stats.num_facts == len(factbench_small)
        assert stats.gold_accuracy == round(factbench_small.gold_accuracy(), 2)

    def test_statistics_table_rows(self, factbench_small, yago_small):
        rows = statistics_table([factbench_small, yago_small])
        assert [row["dataset"] for row in rows] == ["factbench", "yago"]
        assert rows[1]["gold_accuracy"] > rows[0]["gold_accuracy"]
