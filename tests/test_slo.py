"""Telemetry consumption: time series, SLOs, burn-rate alerts, dashboard.

Covers the PR 8 tentpole layer end to end:

* :class:`TimeSeries` — bounded raw rings, open/closed range queries,
  rollup tiers, and the reset-aware :meth:`~TimeSeries.increase` the SLO
  math builds on;
* :class:`MetricsScraper` — lazy series materialisation, the
  ``max_series`` cardinality bound, label-subset matching, and
  deterministic sampling under a :class:`VirtualClock`;
* the SLI family — availability from counters, latency from histogram
  buckets, time-based health from gauges — plus exact error budgets and
  the multi-window multi-burn-rate trip condition;
* :class:`AlertManager` — pending→firing→resolved lifecycles, ``for_s``
  hold-down, and the structured events each transition emits;
* :func:`render_dashboard` — byte-identical frames under seeded reruns;
* the chaos scenario integration — ``expect_alerts`` / ``forbid_alerts``
  invariants, the kill-cell-pages / reference-stays-silent acceptance
  journey, and the run-table rule that alert columns are timing-view
  only so the deterministic CSV stays byte-identical;
* the ``obs top`` / ``obs slo`` CLI modes and the frontend ``slo`` verb.
"""

from __future__ import annotations

import asyncio
import io
import json

import pytest

from repro.chaos import ScenarioError, ScenarioRunner, VirtualClock, load_scenario
from repro.chaos.scenario import Invariants, RunTable
from repro.obs import (
    DEFAULT_BURN_RULES,
    AlertManager,
    AvailabilitySLI,
    BurnRule,
    EventLog,
    HealthSLI,
    LatencySLI,
    MetricsRegistry,
    MetricsScraper,
    SLO,
    SLOMonitor,
    TimeSeries,
    budget_bar,
    render_dashboard,
    series_key,
    sparkline,
)


# ----------------------------------------------------------------- time series


class TestTimeSeries:
    def _series(self, capacity=8, tiers=((10.0, 4),)):
        return TimeSeries("m_total", (), "counter", capacity=capacity, tiers=tiers)

    def test_series_key_formats_labels_deterministically(self):
        assert series_key("up", {}) == "up"
        assert series_key("up", {"shard": "0", "replica": "1"}) == (
            'up{shard="0",replica="1"}'
        )

    def test_capacity_bounds_the_raw_ring(self):
        series = self._series(capacity=4)
        for second in range(10):
            series.observe(float(second), float(second))
        assert len(series) == 4
        assert [point.ts_s for point in series.points()] == [6.0, 7.0, 8.0, 9.0]

    def test_points_range_is_open_closed(self):
        series = self._series()
        for second in (1.0, 2.0, 3.0):
            series.observe(second, second * 10)
        assert [p.ts_s for p in series.points(start_s=1.0, end_s=3.0)] == [2.0, 3.0]
        assert [p.ts_s for p in series.points(end_s=2.0)] == [1.0, 2.0]
        assert series.latest().value == 30.0

    def test_rollup_aggregates_per_tier_bucket(self):
        series = self._series(tiers=((10.0, 4),))
        for ts, value in ((0.0, 1.0), (5.0, 3.0), (12.0, 2.0)):
            series.observe(ts, value)
        first, second = series.rollup(10.0)
        assert (first.start_s, first.min, first.max, first.count) == (0.0, 1.0, 3.0, 2)
        assert first.mean == 2.0 and first.last == 3.0
        assert second.start_s == 10.0 and second.count == 1
        with pytest.raises(ValueError, match="tiers"):
            series.rollup(60.0)

    def test_rollup_rings_are_bounded(self):
        series = self._series(capacity=64, tiers=((1.0, 3),))
        for second in range(10):
            series.observe(float(second), 1.0)
        assert [bucket.start_s for bucket in series.rollup(1.0)] == [7.0, 8.0, 9.0]

    def test_increase_sums_positive_deltas(self):
        series = self._series()
        for ts, value in ((0.0, 0.0), (1.0, 4.0), (2.0, 10.0)):
            series.observe(ts, value)
        assert series.increase(0.0, 2.0) == 10.0
        assert series.increase(1.0, 2.0) == 6.0
        assert series.increase(5.0, 9.0) == 0.0

    def test_increase_is_reset_aware(self):
        # A worker restart resets its registry: 8 -> 3 must read as "+3
        # since the restart", never as a negative rate.
        series = self._series()
        for ts, value in ((0.0, 0.0), (1.0, 8.0), (2.0, 3.0), (3.0, 5.0)):
            series.observe(ts, value)
        assert series.increase(0.0, 3.0) == 8.0 + 3.0 + 2.0

    def test_series_born_in_window_contributes_its_first_value(self):
        series = self._series()
        series.observe(5.0, 7.0)
        assert series.increase(0.0, 10.0) == 7.0

    def test_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            self._series(capacity=0)
        with pytest.raises(ValueError, match="tier"):
            TimeSeries("m", (), "gauge", tiers=((0.0, 4),))


# -------------------------------------------------------------------- scraper


class TestMetricsScraper:
    def _registry(self):
        registry = MetricsRegistry()
        requests = registry.counter("requests_total", "Requests.", ("outcome",))
        requests.labels(outcome="completed").inc(5)
        requests.labels(outcome="error").inc(1)
        registry.gauge("depth", "Depth.").set(2)
        return registry

    def test_scrape_materialises_series_per_sample_line(self):
        clock = VirtualClock()
        scraper = MetricsScraper(self._registry(), clock=clock)
        recorded = scraper.scrape_once()
        assert recorded == 3
        assert scraper.scrapes == 1
        assert scraper.keys() == [
            "depth",
            'requests_total{outcome="completed"}',
            'requests_total{outcome="error"}',
        ]
        assert scraper.get("depth").kind == "gauge"

    def test_histogram_scrapes_bucket_sum_and_count_series(self):
        registry = MetricsRegistry()
        latency = registry.histogram("lat_seconds", "L.", buckets=(0.01, 0.1))
        latency.observe(0.004)
        scraper = MetricsScraper(registry, clock=VirtualClock())
        scraper.scrape_once()
        names = {series.name for key in scraper.keys() for series in [scraper.get(key)]}
        assert names == {"lat_seconds_bucket", "lat_seconds_sum", "lat_seconds_count"}
        under = scraper.match("lat_seconds_bucket", {"le": "0.01"})
        assert len(under) == 1 and under[0].latest().value == 1.0

    def test_max_series_bound_counts_drops_instead_of_growing(self):
        registry = MetricsRegistry()
        fanout = registry.counter("fan_total", "F.", ("idx",))
        for index in range(6):
            fanout.labels(idx=str(index)).inc()
        scraper = MetricsScraper(registry, clock=VirtualClock(), max_series=4)
        scraper.scrape_once()
        assert len(scraper) == 4
        assert scraper.dropped_series == 2
        scraper.scrape_once()  # known series keep recording, drops keep counting
        assert len(scraper) == 4
        assert scraper.dropped_series == 4

    def test_match_is_a_label_subset_selector(self):
        registry = MetricsRegistry()
        served = registry.counter("served_total", "S.")
        served.inc(3)
        scraper = MetricsScraper(
            lambda: registry.collect({"shard": "0", "replica": "1"}),
            clock=VirtualClock(),
        )
        scraper.scrape_once()
        assert len(scraper.match("served_total")) == 1
        assert len(scraper.match("served_total", {"shard": "0"})) == 1
        assert scraper.match("served_total", {"shard": "9"}) == []
        assert scraper.last_value("served_total") == 3.0

    def test_sum_increase_spans_replicas_and_respects_windows(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("served_total", "S.").inc(1)
        b.counter("served_total", "S.").inc(2)
        clock = VirtualClock()
        scraper = MetricsScraper(
            lambda: a.collect({"replica": "0"}) + b.collect({"replica": "1"}),
            clock=clock,
        )
        scraper.scrape_once()
        clock.advance(1.0)
        a.counter("served_total", "S.").inc(4)
        scraper.scrape_once()
        assert scraper.sum_increase("served_total", 0.0, 1.0) == 4.0
        assert scraper.sum_increase("served_total", -1.0, 1.0) == 7.0

    def test_seeded_scrapes_are_deterministic(self):
        def run():
            clock = VirtualClock()
            scraper = MetricsScraper(self._registry(), clock=clock, interval_s=0.5)
            for _ in range(4):
                scraper.scrape_once()
                clock.advance(0.5)
            return [
                (key, [(p.ts_s, p.value) for p in scraper.get(key).points()])
                for key in scraper.keys()
            ]

        assert run() == run()

    def test_validation(self):
        with pytest.raises(ValueError, match="interval_s"):
            MetricsScraper(MetricsRegistry(), interval_s=0.0)
        with pytest.raises(ValueError, match="max_series"):
            MetricsScraper(MetricsRegistry(), max_series=0)


# ------------------------------------------------------------------------ SLOs


def _scraped(registry, clock=None):
    scraper = MetricsScraper(registry, clock=clock or VirtualClock())
    scraper.scrape_once()
    return scraper


class TestSLIs:
    def test_availability_sli_reads_counter_increases(self):
        registry = MetricsRegistry()
        requests = registry.counter("requests_total", "R.", ("outcome",))
        requests.labels(outcome="completed").inc(97)
        requests.labels(outcome="error").inc(1)
        registry.counter("failures_total", "F.").inc(3)
        sli = AvailabilitySLI.of(
            good={"requests_total": {"outcome": "completed"}},
            bad={"failures_total": {}},
        )
        window = sli.evaluate(_scraped(registry), -1.0, 1.0)
        assert (window.good, window.bad) == (97.0, 3.0)
        assert window.bad_ratio == 0.03

    def test_latency_sli_reads_threshold_bucket_directly(self):
        registry = MetricsRegistry()
        latency = registry.histogram("lat_seconds", "L.", buckets=(0.01, 0.1, 1.0))
        for value in (0.004, 0.005, 0.05, 0.5):
            latency.observe(value)
        sli = LatencySLI("lat_seconds", threshold_s=0.01)
        window = sli.evaluate(_scraped(registry), -1.0, 1.0)
        assert (window.good, window.bad) == (2.0, 2.0)
        # Whole-number thresholds use the int-form le label the renderer emits.
        whole = LatencySLI("lat_seconds", threshold_s=1.0)
        window = whole.evaluate(_scraped(registry), -1.0, 1.0)
        assert (window.good, window.bad) == (4.0, 0.0)

    def test_health_sli_is_time_based_and_merges_replicas(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("unhealthy", "U.")
        clock = VirtualClock()
        scraper = MetricsScraper(registry, clock=clock)
        scraper.scrape_once()  # t=0: 0 unhealthy of 4
        clock.advance(1.0)
        gauge.set(1)
        scraper.scrape_once()  # t=1: 1 unhealthy of 4
        sli = HealthSLI("unhealthy", bad_when=lambda value: value / 4.0)
        window = sli.evaluate(scraper, -1.0, 2.0)
        assert (window.good, window.bad) == (1.75, 0.25)
        assert window.total == 2.0  # two scrape instants


class TestSLO:
    def _slo(self, objective=0.99, rules=DEFAULT_BURN_RULES):
        return SLO(
            "avail",
            objective=objective,
            sli=AvailabilitySLI.of(
                good={"good_total": {}}, bad={"bad_total": {}}
            ),
            rules=rules,
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="objective"):
            self._slo(objective=1.0)
        with pytest.raises(ValueError, match="burn rule"):
            self._slo(rules=())

    def test_budget_and_burn_math_is_exact(self):
        registry = MetricsRegistry()
        registry.counter("good_total", "G.").inc(990)
        registry.counter("bad_total", "B.").inc(10)
        slo = self._slo(objective=0.99)
        status = slo.evaluate(_scraped(registry), now_s=1.0)
        # bad_ratio exactly equals the error budget: burning at 1x, 0 left.
        assert status.window.bad_ratio == pytest.approx(0.01)
        assert status.budget_remaining == pytest.approx(0.0)
        for reading in status.rules:
            assert reading.long_burn == pytest.approx(1.0)
            assert not reading.exceeded

    def test_rules_trip_only_when_both_windows_exceed(self):
        # One burst of badness long ago: the long window still sees it but
        # the short window is clean, so the page must NOT trip.
        registry = MetricsRegistry()
        good = registry.counter("good_total", "G.")
        bad = registry.counter("bad_total", "B.")
        clock = VirtualClock()
        scraper = MetricsScraper(registry, clock=clock)
        scraper.scrape_once()
        bad.inc(50)
        good.inc(50)
        clock.advance(600.0)
        scraper.scrape_once()  # the burst lands at t=600
        good.inc(100)
        clock.advance(2000.0)
        scraper.scrape_once()  # clean traffic at t=2600
        rule = BurnRule("page", factor=14.4, long_window_s=3600.0, short_window_s=300.0)
        status = SLO(
            "avail",
            0.99,
            AvailabilitySLI.of(good={"good_total": {}}, bad={"bad_total": {}}),
            rules=(rule,),
        ).evaluate(scraper, now_s=2600.0)
        (reading,) = status.rules
        assert reading.long_burn > rule.factor
        assert reading.short_burn == 0.0
        assert not reading.exceeded

    def test_empty_windows_report_healthy_not_divide_by_zero(self):
        status = self._slo().evaluate(
            MetricsScraper(MetricsRegistry(), clock=VirtualClock()), now_s=0.0
        )
        assert status.budget_remaining == 1.0
        assert all(not reading.exceeded for reading in status.rules)


# ---------------------------------------------------------------------- alerts


class TestAlertManager:
    def _burning_scraper(self, clock):
        registry = MetricsRegistry()
        registry.counter("good_total", "G.").inc(1)
        registry.counter("bad_total", "B.").inc(99)
        scraper = MetricsScraper(registry, clock=clock)
        scraper.scrape_once()
        return registry, scraper

    def _slo(self, for_s=0.0):
        return SLO(
            "avail",
            0.99,
            AvailabilitySLI.of(good={"good_total": {}}, bad={"bad_total": {}}),
            rules=(
                BurnRule(
                    "page",
                    factor=14.4,
                    long_window_s=3600.0,
                    short_window_s=300.0,
                    for_s=for_s,
                ),
            ),
        )

    def test_duplicate_alert_ids_raise(self):
        with pytest.raises(ValueError, match="duplicate alert id"):
            AlertManager([self._slo(), self._slo()])

    def test_zero_for_s_goes_pending_and_firing_in_one_pass(self):
        clock = VirtualClock()
        _, scraper = self._burning_scraper(clock)
        events = EventLog(clock)
        manager = AlertManager([self._slo()], events=events)
        manager.evaluate_once(scraper, now_s=1.0)
        alert = manager.get("avail:page")
        assert alert.state == "firing" and alert.fired_count == 1
        assert manager.fired_ids() == ["avail:page"]
        assert manager.active_ids() == ["avail:page"]
        # The pending event still lands first so the timeline is explicit.
        kinds = [event.kind for event in events.events()]
        assert kinds == ["alert_pending", "alert_firing"]
        assert events.events()[0].target == "avail:page"

    def test_for_s_holds_the_alert_in_pending(self):
        clock = VirtualClock()
        _, scraper = self._burning_scraper(clock)
        manager = AlertManager([self._slo(for_s=10.0)])
        manager.evaluate_once(scraper, now_s=1.0)
        assert manager.get("avail:page").state == "pending"
        manager.evaluate_once(scraper, now_s=5.0)
        assert manager.get("avail:page").state == "pending"
        assert manager.fired_ids() == []
        manager.evaluate_once(scraper, now_s=11.0)
        assert manager.get("avail:page").state == "firing"

    def test_firing_resolves_when_the_condition_clears_and_emits(self):
        clock = VirtualClock()
        registry, scraper = self._burning_scraper(clock)
        events = EventLog(clock)
        manager = AlertManager([self._slo()], events=events)
        manager.evaluate_once(scraper, now_s=1.0)
        # Flood the short window with good traffic: short burn collapses.
        registry.counter("good_total", "G.").inc(10_000_000)
        clock.advance(3601.0)
        scraper.scrape_once()
        manager.evaluate_once(scraper, now_s=3602.0)
        alert = manager.get("avail:page")
        assert alert.state == "resolved"
        assert alert.fired_count == 1  # survives resolution for invariants
        kinds = [event.kind for event in events.events()]
        assert kinds == ["alert_pending", "alert_firing", "alert_resolved"]

    def test_pending_that_never_fired_resolves_silently(self):
        clock = VirtualClock()
        registry, scraper = self._burning_scraper(clock)
        events = EventLog(clock)
        manager = AlertManager([self._slo(for_s=100.0)], events=events)
        manager.evaluate_once(scraper, now_s=1.0)
        registry.counter("good_total", "G.").inc(10_000_000)
        clock.advance(3601.0)
        scraper.scrape_once()
        manager.evaluate_once(scraper, now_s=3602.0)
        assert manager.get("avail:page").state == "resolved"
        assert manager.fired_ids() == []
        kinds = [event.kind for event in events.events()]
        assert kinds == ["alert_pending"], "no firing, so no resolved event"


class TestSLOMonitor:
    def test_tick_scrapes_evaluates_and_payload_is_json_safe(self):
        clock = VirtualClock()
        registry = MetricsRegistry()
        registry.counter("good_total", "G.").inc(10)
        monitor = SLOMonitor(
            MetricsScraper(registry, clock=clock),
            [
                SLO(
                    "avail",
                    0.99,
                    AvailabilitySLI.of(good={"good_total": {}}, bad={}),
                )
            ],
        )
        assert monitor.statuses == []
        statuses = monitor.tick()
        assert len(statuses) == 1 and monitor.scraper.scrapes == 1
        payload = monitor.status_payload()
        json.dumps(payload)  # JSON-safe end to end
        assert payload["slos"][0]["name"] == "avail"
        assert payload["alerts"][0]["alert_id"] == "avail:page"


# ------------------------------------------------------------------- dashboard


class TestDashboard:
    def test_sparkline_scales_per_window_and_flat_reads_calm(self):
        assert sparkline([]) == ""
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"
        line = sparkline([0.0, 1.0, 2.0, 3.0], width=4)
        assert line[0] == "▁" and line[-1] == "█"
        assert len(sparkline(list(range(100)), width=8)) == 8

    def test_budget_bar_clamps(self):
        assert budget_bar(1.0, width=4) == "[████]"
        assert budget_bar(0.0, width=4) == "[░░░░]"
        assert budget_bar(-3.0, width=4) == "[░░░░]"
        assert budget_bar(0.5, width=4) == "[██░░]"

    def _monitor(self):
        clock = VirtualClock()
        registry = MetricsRegistry()
        requests = registry.counter(
            "service_requests_total", "R.", ("outcome",)
        )
        requests.labels(outcome="completed").inc(10)
        registry.gauge("router_unhealthy_replicas", "U.").set(1)
        events = EventLog(clock)
        monitor = SLOMonitor(
            MetricsScraper(registry, clock=clock),
            [
                SLO(
                    "fleet",
                    0.99,
                    HealthSLI(
                        "router_unhealthy_replicas",
                        bad_when=lambda value: value / 4.0,
                    ),
                )
            ],
            events=events,
        )
        clock.advance(1.0)
        monitor.tick()
        return monitor, events

    def test_render_contains_every_section_and_is_deterministic(self):
        first_monitor, first_events = self._monitor()
        second_monitor, second_events = self._monitor()
        first = render_dashboard(first_monitor, events=first_events, title="unit")
        second = render_dashboard(second_monitor, events=second_events, title="unit")
        assert first == second, "seeded rerun must render byte-identical frames"
        assert "── obs top · unit" in first
        assert "error budgets" in first and "alerts" in first
        assert "fleet:page" in first
        assert "recent alert events" in first  # the 25x burn pages at once
        assert "─" in first.splitlines()[0]


# ------------------------------------------------- chaos invariants + run table


def _alert_scenario(**overrides) -> dict:
    scenario = {
        "name": "alerts",
        "seed": 3,
        "dataset": "factbench",
        "methods": ["dka"],
        "models": ["gemma2:9b"],
        "requests": 24,
        "concurrency": 4,
        "retry": {"max_attempts": 2, "base_backoff_s": 0.001},
        "service": {"request_timeout_s": 0.25, "probe_interval_s": 0.02},
        "matrix": {
            "topology": [{"shards": 1, "replicas": 2}],
            "traffic": [{"shape": "steady"}],
            "faults": [
                {
                    "name": "kill",
                    "schedule": [
                        {"at_s": 0.0, "target": "shard:0/replica:1", "fault": "kill"}
                    ],
                }
            ],
        },
        "invariants": {
            "max_failed": 0,
            "expect_alerts": {"kill": ["fleet-availability:page"]},
            "forbid_alerts": {"none": ["*"]},
        },
    }
    scenario.update(overrides)
    return scenario


class TestAlertInvariantParsing:
    def test_alert_maps_parse_and_lookups_work(self):
        scenario = load_scenario(_alert_scenario())
        invariants = scenario.invariants
        assert invariants.expected_alerts_for("kill") == ("fleet-availability:page",)
        assert invariants.expected_alerts_for("none") == ()
        assert invariants.forbidden_alerts_for("none") == ("*",)
        assert invariants.forbidden_alerts_for("kill") is None

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (
                lambda inv: inv.update(expect_alerts={"bogus-cell": ["a:page"]}),
                "unknown cell",
            ),
            (
                lambda inv: inv.update(expect_alerts={"kill": []}),
                "non-empty list",
            ),
            (
                lambda inv: inv.update(expect_alerts={"kill": ["no-colon"]}),
                "slo-name:severity",
            ),
            (
                lambda inv: inv.update(expect_alerts={"kill": ["*"]}),
                "only forbid_alerts",
            ),
            (
                lambda inv: inv.update(forbid_alerts={"kill": [7]}),
                "non-string alert id",
            ),
            (
                lambda inv: inv.update(expect_alerts=["a:page"]),
                "must map fault-case names",
            ),
        ],
    )
    def test_malformed_alert_maps_raise(self, mutate, message):
        scenario = _alert_scenario()
        mutate(scenario["invariants"])
        with pytest.raises(ScenarioError, match=message):
            load_scenario(scenario)


class TestRunTableAlertColumns:
    def test_alert_columns_are_timing_view_only(self):
        assert "alerts" in RunTable.TIMING_COLUMNS
        assert "alerts" not in RunTable.DETERMINISTIC_COLUMNS


class TestScenarioAlertIntegration:
    def test_kill_cell_pages_reference_stays_silent_and_csv_is_deterministic(
        self, runner
    ):
        """The PR's acceptance journey: one replica dead from t=0 burns
        the fleet-availability budget at 2x fleet share — both burn
        windows read 50x on a 1x2 fleet — so the page must fire in the
        kill cell and nothing may fire in the fault-free reference; the
        deterministic CSV (which excludes the alerts column) must stay
        byte-identical across reruns even though alerts fired."""
        scenario = load_scenario(_alert_scenario())
        first = ScenarioRunner(runner, scenario).run()
        second = ScenarioRunner(runner, scenario).run()
        assert first.ok, f"invariant failures: {first.failed_checks()}"

        by_fault = {cell.fault_name: cell for cell in first.cells}
        assert "fleet-availability:page" in by_fault["kill"].fired_alerts
        assert by_fault["none"].fired_alerts == ()
        check_names = {check.name for check in by_fault["kill"].checks}
        assert "expect-alerts" in check_names
        assert "forbid-alerts" in {
            check.name for check in by_fault["none"].checks
        }

        # Alert columns ride the timing view only: the deterministic CSV
        # is byte-identical across runs, the full CSV names the alerts.
        assert first.csv(include_timings=False) == second.csv(include_timings=False)
        deterministic_header = first.csv(include_timings=False).splitlines()[0]
        assert "alerts" not in deterministic_header
        timed = first.csv(include_timings=True)
        assert "alerts" in timed.splitlines()[0]
        assert "fleet-availability:page" in timed


# ------------------------------------------------------------ CLI + frontend


class TestObsDashboardCLI:
    CLI_ARGS = [
        "--scale",
        "0.02",
        "--max-facts",
        "12",
        "--requests",
        "24",
        "--frames",
        "3",
        "--replicas",
        "2",
        "--time-scale",
        "0",
    ]

    def _run(self, *extra):
        from repro.benchmark.cli import main

        stream = io.StringIO()
        code = main(["obs", *extra, *self.CLI_ARGS], stream=stream)
        return code, stream.getvalue()

    def test_obs_top_once_renders_byte_identically(self):
        first_code, first = self._run("top", "--once", "--kill", "shard:0/replica:1")
        second_code, second = self._run("top", "--once", "--kill", "shard:0/replica:1")
        assert first_code == second_code == 0
        assert first == second, "seeded obs top reruns must be byte-identical"
        assert "── obs top ·" in first
        # The killed replica pages the fleet-availability SLO.
        assert "UNHEALTHY" in first
        assert "! fleet-availability:page" in first

    def test_obs_slo_emits_the_json_payload(self):
        code, output = self._run("slo")
        assert code == 0
        payload = json.loads(output)
        assert {slo["name"] for slo in payload["slos"]} == {
            "availability",
            "fleet-availability",
        }
        assert all(alert["state"] == "inactive" for alert in payload["alerts"])

    def test_bad_kill_target_fails_fast(self):
        with pytest.raises(SystemExit, match="outside"):
            self._run("top", "--once", "--kill", "shard:5/replica:0")
        with pytest.raises(SystemExit, match="shard:0/replica:1"):
            self._run("top", "--once", "--kill", "replica-one")


class TestFrontendSLOVerb:
    def test_slo_verb_serves_the_monitor_payload(self, runner):
        from repro.service import (
            ServiceConfig,
            ShardedValidationService,
            TCPValidationFrontend,
        )

        dataset = runner.dataset("factbench")
        fact = dataset[0]

        async def go():
            router = ShardedValidationService.from_runner(
                runner, 1, ServiceConfig(enable_cache=False), replicas=2
            )
            async with router:
                monitor = SLOMonitor(
                    MetricsScraper(lambda: router.metrics.collect_families()),
                    [
                        SLO(
                            "availability",
                            0.999,
                            AvailabilitySLI.of(
                                good={
                                    "service_requests_total": {
                                        "outcome": "completed"
                                    }
                                },
                                bad={"router_failures_total": {}},
                            ),
                        )
                    ],
                )
                frontend = TCPValidationFrontend(router, {"factbench": dataset})
                frontend.set_slo_monitor(monitor)
                async with frontend:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", frontend.port
                    )
                    writer.write(
                        json.dumps(
                            {
                                "dataset": "factbench",
                                "fact_id": fact.fact_id,
                                "method": "dka",
                                "model": "gemma2:9b",
                            }
                        ).encode()
                        + b"\n"
                    )
                    await writer.drain()
                    await reader.readline()
                    writer.write(b'{"cmd": "slo"}\n')
                    await writer.drain()
                    payload = json.loads(await reader.readline())
                    handled = frontend.requests_handled
                    writer.close()
                    await writer.wait_closed()
            return payload, handled

        payload, handled = asyncio.run(go())
        assert payload["slos"][0]["name"] == "availability"
        assert payload["slos"][0]["good"] >= 1.0  # the request was scraped
        assert payload["scrapes"] >= 1
        # Control commands never count toward requests_handled.
        assert handled == 1

    def test_slo_verb_without_a_monitor_is_an_error_reply(self, runner):
        from repro.service import ServiceConfig, TCPValidationFrontend, ValidationService

        dataset = runner.dataset("factbench")

        async def go():
            service = ValidationService.from_runner(
                runner, ServiceConfig(enable_cache=False)
            )
            async with service:
                frontend = TCPValidationFrontend(service, {"factbench": dataset})
                async with frontend:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", frontend.port
                    )
                    writer.write(b'{"cmd": "slo"}\n')
                    await writer.drain()
                    reply = json.loads(await reader.readline())
                    writer.close()
                    await writer.wait_closed()
            return reply

        reply = asyncio.run(go())
        assert reply["outcome"] == "error"
        assert "no SLO monitor" in reply["error"]
