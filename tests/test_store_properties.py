"""Property-based replay tests: random mutation interleavings are replayable.

The store's contract is ``store == replay(store.log)`` *for any history*.
These tests drive seeded-random interleavings of ``add_triple`` /
``remove_triple`` / ``add_document`` — in random batch sizes, across the
shards of a :class:`~repro.store.ShardedStore` and against a single
:class:`~repro.store.VersionedKnowledgeStore` — and assert that replaying
the mutation logs reproduces, per shard:

* ``state_digest()`` (graph interning + corpus bytes + BM25 index layout);
* search results, ids *and* scores, byte-identical to the head state;
* path enumeration, content *and* order, byte-identical to the head state.

Rebuild fallbacks are exercised too: one configuration uses aggressive
dirty-fraction thresholds so replay must take the same rebuild branches at
the same epochs to stay byte-identical.  Seeds are fixed (no new deps, no
flakes): every sequence that ever fails can be replayed exactly.
"""

from __future__ import annotations

import random
from typing import List, Set

import pytest

from repro.kg import Triple
from repro.retrieval.corpus import Document
from repro.store import (
    Mutation,
    MutationLog,
    ReplicaGroup,
    ShardedStore,
    StoreConfig,
    VersionedKnowledgeStore,
)

NUM_SHARDS = 3


def _seed_triples(count: int, rng: random.Random) -> List[Triple]:
    triples: Set[Triple] = set()
    while len(triples) < count:
        triples.add(
            Triple(
                f"entity{rng.randrange(30)}",
                f"pred{rng.randrange(5)}",
                f"entity{rng.randrange(30)}",
            )
        )
    return sorted(triples)


def _document(index: int, rng: random.Random) -> Document:
    subject = rng.randrange(30)
    return Document(
        doc_id=f"doc{index}",
        url=f"https://corpus.example/doc{index}",
        title=f"entity{subject} dossier",
        text=(
            f"entity{subject} connects to entity{rng.randrange(30)} via "
            f"pred{rng.randrange(5)}; archival item {index}."
        ),
        source="corpus.example",
        fact_id=f"fact-{rng.randrange(20)}" if rng.random() < 0.7 else "",
    )


def _random_history(rng: random.Random, operations: int):
    """Seed state plus a list of valid mutation batches over it."""
    triples = _seed_triples(40, rng)
    documents = [_document(i, rng) for i in range(20)]
    live: Set[Triple] = set(triples)
    next_doc = len(documents)
    batches: List[List[Mutation]] = []
    emitted = 0
    while emitted < operations:
        batch: List[Mutation] = []
        batch_live = set(live)
        for _ in range(rng.randrange(1, 8)):
            roll = rng.random()
            if roll < 0.45:
                triple = Triple(
                    f"entity{rng.randrange(30)}",
                    f"pred{rng.randrange(5)}",
                    f"entity{rng.randrange(30)}",
                )
                # Duplicate adds are permitted no-ops; both paths are valid
                # history, so emit whichever the dice produced.
                batch.append(Mutation(op="add_triple", triple=triple))
                batch_live.add(triple)
            elif roll < 0.75 and batch_live:
                victim = rng.choice(sorted(batch_live))
                batch.append(Mutation(op="remove_triple", triple=victim))
                batch_live.discard(victim)
            else:
                batch.append(Mutation.add_document(_document(next_doc, rng)))
                next_doc += 1
        live = batch_live
        emitted += len(batch)
        batches.append(batch)
    return triples, documents, batches


def _assert_search_parity(head, twin, rng: random.Random) -> None:
    queries = [
        f"entity{rng.randrange(30)} dossier archival item"
        for _ in range(12)
    ]
    for query in queries:
        head_hits = [
            (result.document.doc_id, result.score)
            for result in head.search_engine.search(query, 10)
        ]
        twin_hits = [
            (result.document.doc_id, result.score)
            for result in twin.search_engine.search(query, 10)
        ]
        assert head_hits == twin_hits, f"search diverged for {query!r}"


def _assert_path_parity(head, twin, rng: random.Random) -> None:
    nodes = head.graph.nodes()
    if not nodes:
        return
    for _ in range(15):
        source, target = rng.choice(nodes), rng.choice(nodes)
        assert head.graph.find_paths(source, target, max_length=3) == (
            twin.graph.find_paths(source, target, max_length=3)
        ), f"paths diverged for {source} -> {target}"


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_any_sharded_interleaving_replays_byte_identical(seed):
    rng = random.Random(seed)
    triples, documents, batches = _random_history(rng, operations=120)
    store = ShardedStore.partition(triples, documents, num_shards=NUM_SHARDS)
    # Materialise the search engines up front so every batch maintains the
    # indexes incrementally — the interesting (stateful) code path.
    for shard in store.shards:
        _ = shard.search_engine
    for batch in batches:
        store.apply(batch)

    twin = store.replay_twin()
    assert twin.epoch_vector == store.epoch_vector
    assert twin.state_digests() == store.state_digests(), (
        f"seed {seed}: replay diverged from head state"
    )
    check_rng = random.Random(seed + 1000)
    for head_shard, twin_shard in zip(store.shards, twin.shards):
        _assert_search_parity(head_shard, twin_shard, check_rng)
        _assert_path_parity(head_shard, twin_shard, check_rng)


@pytest.mark.parametrize("seed", [5, 6])
def test_aggressive_rebuild_thresholds_replay_identically(seed):
    # Tiny dirty fractions force the rebuild fallbacks (index rebuild,
    # graph re-interning) to fire repeatedly; the decisions are functions
    # of the log, so replay must take the same branches and stay identical.
    config = StoreConfig(index_rebuild_fraction=0.01, graph_rebuild_fraction=0.05)
    rng = random.Random(seed)
    triples, documents, batches = _random_history(rng, operations=90)
    store = ShardedStore.partition(
        triples, documents, num_shards=NUM_SHARDS, config=config
    )
    for shard in store.shards:
        _ = shard.search_engine
    for batch in batches:
        store.apply(batch)
    twin = store.replay_twin()
    assert twin.state_digests() == store.state_digests()


@pytest.mark.parametrize("seed", [7, 8, 9])
def test_unsharded_history_replay_and_snapshots(seed, tmp_path):
    rng = random.Random(seed)
    triples, documents, batches = _random_history(rng, operations=80)
    store = VersionedKnowledgeStore.bootstrap(triples=triples, documents=documents)
    _ = store.search_engine
    digests_by_epoch = {store.epoch: store.state_digest()}
    for batch in batches:
        store.apply(batch)
        digests_by_epoch[store.epoch] = store.state_digest()

    # Full replay reproduces the head digest...
    twin = VersionedKnowledgeStore.replay(store.log, config=store.config)
    assert twin.state_digest() == store.state_digest()
    # ...bounded replay reproduces every historical digest...
    for epoch in sorted(digests_by_epoch):
        partial = VersionedKnowledgeStore.replay(
            store.log, config=store.config, upto=epoch
        )
        assert partial.epoch == epoch
        assert partial.state_digest() == digests_by_epoch[epoch], (
            f"seed {seed}: epoch {epoch} not reproducible from the log"
        )
    # ...and a save/load round-trip preserves all of it.
    path = str(tmp_path / "store.jsonl")
    store.save(path)
    loaded = VersionedKnowledgeStore.load(path)
    assert loaded.state_digest() == store.state_digest()


@pytest.mark.parametrize("seed", [10, 11, 12, 13])
def test_any_interleaving_log_ships_byte_identical_replicas(seed):
    """Replication determinism: any write history shipped to R replicas
    leaves every copy byte-identical to the primary, at every epoch along
    the way — and replaying any replica's own log reproduces it again."""
    rng = random.Random(seed)
    triples, documents, batches = _random_history(rng, operations=100)
    primary = VersionedKnowledgeStore.bootstrap(triples=triples, documents=documents)
    _ = primary.search_engine
    group = ReplicaGroup.replicate(primary, replicas=3, include_index=True)
    for store in group.stores:
        _ = store.search_engine  # exercise the incremental path on every copy
    for batch in batches:
        report = group.apply(batch)
        # Lockstep at every epoch, full-index digests included (apply()
        # itself enforces this via verify(); re-check explicitly so a
        # silently-disabled check cannot pass the test).
        assert all(store.epoch == report.epoch for store in group.stores)
        digests = group.digests(include_index=True)
        assert len(set(digests)) == 1, f"seed {seed}: diverged at {report.epoch}"

    check_rng = random.Random(seed + 2000)
    for replica in group.stores[1:]:
        _assert_search_parity(primary, replica, check_rng)
        _assert_path_parity(primary, replica, check_rng)
        # Each replica's own log is a complete, independently replayable
        # history of the shipped batches.
        twin = VersionedKnowledgeStore.replay(replica.log, config=replica.config)
        assert twin.state_digest() == replica.state_digest()


@pytest.mark.parametrize("seed", [14, 15])
def test_replica_groups_over_sharded_fleet_stay_identical(seed):
    """Sharded + replicated: route random batches to their owning shard's
    replica group; every group stays internally byte-identical and agrees
    with an unreplicated fleet fed the same history."""
    rng = random.Random(seed)
    triples, documents, batches = _random_history(rng, operations=80)
    fleet = ShardedStore.partition(triples, documents, num_shards=NUM_SHARDS)
    reference = ShardedStore.partition(triples, documents, num_shards=NUM_SHARDS)
    groups = fleet.replicate(3, include_index=True)
    for batch in batches:
        reference.apply(batch)
        for index, sub_batch in sorted(fleet.route(batch).items()):
            groups[index].apply(sub_batch)
    for index, group in enumerate(groups):
        assert len(set(group.digests(include_index=True))) == 1
        assert group.primary.state_digest() == reference.shards[index].state_digest(), (
            f"seed {seed}: shard {index} replica group diverged from the "
            f"unreplicated fleet"
        )


def test_log_persistence_round_trips_random_mutations(tmp_path):
    rng = random.Random(42)
    _, _, batches = _random_history(rng, operations=60)
    log = MutationLog()
    for epoch, batch in enumerate(batches, start=1):
        log.append_batch(epoch, batch)
    path = str(tmp_path / "log.jsonl")
    log.save(path)
    loaded, _ = MutationLog.load(path)
    assert len(loaded) == len(log)
    assert [
        (epoch, mutation.to_json()) for epoch, mutation in loaded
    ] == [(epoch, mutation.to_json()) for epoch, mutation in log]
