"""Tests for KG encodings and label/predicate (de)coding."""

from repro.kg import (
    DBPEDIA_ENCODING,
    ENCODINGS,
    FREEBASE_ENCODING,
    YAGO_ENCODING,
    camel_case,
    decode_label,
    decode_predicate,
    encode_label,
    split_camel_case,
)


class TestLabelEncoding:
    def test_encode_replaces_spaces(self):
        assert encode_label("Alexander III of Russia") == "Alexander_III_of_Russia"

    def test_decode_inverts_encode(self):
        assert decode_label(encode_label("Marie Curie")) == "Marie Curie"

    def test_decode_strips_dbpedia_iri(self):
        term = "http://dbpedia.org/resource/Albert_Einstein"
        assert decode_label(term) == "Albert Einstein"

    def test_decode_strips_yago_brackets(self):
        assert decode_label("<Albert_Einstein>") == "Albert Einstein"

    def test_decode_strips_freebase_prefix(self):
        assert decode_label("fb:Albert_Einstein") == "Albert Einstein"

    def test_decode_handles_plain_label(self):
        assert decode_label("Plain Label") == "Plain Label"


class TestCamelCase:
    def test_camel_case_roundtrip(self):
        assert camel_case("is married to") == "isMarriedTo"
        assert split_camel_case("isMarriedTo") == "is married to"

    def test_camel_case_single_word(self):
        assert camel_case("spouse") == "spouse"

    def test_camel_case_empty(self):
        assert camel_case("") == ""

    def test_split_handles_digits(self):
        assert split_camel_case("birthYear2") == "birth year2"


class TestPredicateDecoding:
    def test_decode_dbpedia_ontology_predicate(self):
        assert decode_predicate("http://dbpedia.org/ontology/birthPlace") == "birthPlace"

    def test_decode_yago_predicate(self):
        assert decode_predicate("<wasBornIn>") == "wasBornIn"

    def test_decode_freebase_predicate(self):
        assert decode_predicate("fb:birth.place") == "birth.place"


class TestEncodings:
    def test_registry_contains_three_kgs(self):
        assert set(ENCODINGS) == {"dbpedia", "yago", "freebase"}

    def test_dbpedia_triple_encoding(self):
        triple = DBPEDIA_ENCODING.encode_triple("Marie Curie", "birthPlace", "Warsaw Town")
        assert triple.subject == "http://dbpedia.org/resource/Marie_Curie"
        assert triple.predicate == "http://dbpedia.org/ontology/birthPlace"
        assert triple.object == "http://dbpedia.org/resource/Warsaw_Town"

    def test_yago_entities_use_brackets_and_underscores(self):
        triple = YAGO_ENCODING.encode_triple("Marie Curie", "wasBornIn", "Warsaw Town")
        assert triple.subject == "<Marie_Curie>"
        assert triple.object == "<Warsaw_Town>"

    def test_freebase_entities_use_prefix(self):
        assert FREEBASE_ENCODING.encode_entity("Marie Curie") == "fb:Marie_Curie"

    def test_source_domains_include_wikipedia(self):
        for encoding in ENCODINGS.values():
            assert any("wikipedia" in domain for domain in encoding.source_domains)

    def test_roundtrip_entity_names(self):
        for encoding in ENCODINGS.values():
            encoded = encoding.encode_entity("Quentin Ravenscroft")
            assert decode_label(encoded) == "Quentin Ravenscroft"
