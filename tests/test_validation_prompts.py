"""Tests for prompt construction and response parsing."""

import pytest

from repro.validation import (
    FEW_SHOT_EXAMPLES,
    dka_prompt,
    error_explanation_prompt,
    giv_prompt,
    parse_questions,
    parse_verdict,
    question_generation_prompt,
    rag_prompt,
    reprompt_suffix,
    transform_prompt,
)


@pytest.fixture(scope="module")
def fact(factbench_small):
    return factbench_small[0]


class TestPromptConstruction:
    def test_dka_prompt_contains_triple_and_statement(self, fact):
        prompt = dka_prompt(fact, "A statement.")
        assert fact.triple.subject in prompt
        assert "A statement." in prompt
        assert "True or False" in prompt

    def test_giv_prompt_requires_json(self, fact):
        prompt = giv_prompt(fact, "S.")
        assert '"verdict"' in prompt

    def test_giv_few_shot_includes_examples(self, fact):
        zero = giv_prompt(fact, "S.", few_shot=False)
        few = giv_prompt(fact, "S.", few_shot=True)
        assert len(few) > len(zero)
        assert FEW_SHOT_EXAMPLES[0][0] in few
        assert FEW_SHOT_EXAMPLES[0][0] not in zero

    def test_giv_constraints_included(self, fact):
        prompt = giv_prompt(fact, "S.", constraints=["Answers must cite a source."])
        assert "Answers must cite a source." in prompt

    def test_rag_prompt_lists_evidence(self, fact):
        prompt = rag_prompt(fact, ["First chunk.", "Second chunk."], "S.")
        assert "[1] First chunk." in prompt and "[2] Second chunk." in prompt

    def test_rag_prompt_without_evidence(self, fact):
        assert "(no evidence retrieved)" in rag_prompt(fact, [], "S.")

    def test_reprompt_mentions_previous_response(self):
        suffix = reprompt_suffix("I am not sure about this one")
        assert "did not follow the required format" in suffix
        assert "I am not sure" in suffix

    def test_transform_prompt_mentions_triple(self, fact):
        assert fact.triple.predicate in transform_prompt(fact)

    def test_question_generation_prompt(self):
        prompt = question_generation_prompt("Marie Curie was born in Warsaw.", 10)
        assert "10" in prompt and "Marie Curie" in prompt

    def test_error_explanation_prompt(self, fact):
        prompt = error_explanation_prompt(fact, "true")
        assert "'true'" in prompt


class TestVerdictParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ('{"verdict": "true", "confidence": 0.9}', True),
            ('{"verdict": "false", "reasoning": "no"}', False),
            ("True. The statement is supported.", True),
            ("False. Known records contradict it.", False),
            ("  yes, this is correct", True),
            ("No - the claim is wrong", False),
            ("The statement is accurate.", True),
            ("That claim is incorrect and misleading.", False),
        ],
    )
    def test_parse_verdict_variants(self, text, expected):
        assert parse_verdict(text) is expected

    def test_parse_verdict_non_conformant(self):
        assert parse_verdict("I would need more context to decide.") is None

    def test_parse_verdict_empty(self):
        assert parse_verdict("") is None
        assert parse_verdict("   ") is None

    def test_parse_verdict_prefers_json_field(self):
        text = 'Reasoning says false but {"verdict": "true"}'
        assert parse_verdict(text) is True

    def test_parse_verdict_both_keywords_first_wins(self):
        assert parse_verdict("true, not false") is True
        assert parse_verdict("false, not true") is False


class TestQuestionParsing:
    def test_numbered_questions(self):
        text = "1. Where was X born?\n2) What is X known for?\n- Is X married?"
        questions = parse_questions(text)
        assert questions == [
            "Where was X born?",
            "What is X known for?",
            "Is X married?",
        ]

    def test_non_questions_filtered(self):
        text = "Here are the questions:\n1. Where was X born?\nThanks."
        assert parse_questions(text) == ["Where was X born?"]

    def test_short_questions_filtered(self):
        assert parse_questions("1. Why?") == []
