"""Tests for the ontology-rule screener and the hybrid KG+RAG validator."""

import pytest

from repro.baselines import KnowledgeLinker, build_reference_graph
from repro.datasets.base import LabeledFact
from repro.kg import DBPEDIA_ENCODING
from repro.validation import (
    DirectKnowledgeAssessment,
    HybridConfig,
    HybridValidator,
    OntologyRuleChecker,
    RuleGuardedValidator,
    Verdict,
)


@pytest.fixture(scope="module")
def rule_checker(world):
    return OntologyRuleChecker(world)


def _fact(world, subject_name, predicate, object_name, label=False):
    triple = DBPEDIA_ENCODING.encode_triple(subject_name, predicate, object_name)
    return LabeledFact(
        fact_id=f"manual-{subject_name}-{predicate}-{object_name}"[:60],
        triple=triple,
        label=label,
        dataset="manual",
        subject_name=subject_name,
        object_name=object_name,
        predicate_name=predicate,
        canonical_predicate=predicate,
    )


class TestOntologyRules:
    def test_range_violation_refuted(self, world, rule_checker):
        from repro.worldmodel import EntityType

        person = world.entities_of_type(EntityType.PERSON)[0]
        other_person = world.entities_of_type(EntityType.PERSON)[1]
        fact = _fact(world, person.name, "birthPlace", other_person.name)
        verdict = rule_checker.check(fact)
        assert verdict.refuted
        assert any("range violation" in reason for reason in verdict.reasons)

    def test_functionality_violation_refuted(self, world, rule_checker):
        from repro.worldmodel import EntityType

        person = world.entities_of_type(EntityType.PERSON)[0]
        true_city_id = world.true_objects(person.entity_id, "birthPlace")[0]
        wrong_city = next(
            city for city in world.entities_of_type(EntityType.CITY)
            if city.entity_id != true_city_id
        )
        fact = _fact(world, person.name, "birthPlace", wrong_city.name)
        verdict = rule_checker.check(fact)
        assert verdict.refuted
        assert any("functionality" in reason for reason in verdict.reasons)

    def test_true_fact_abstains(self, world, rule_checker):
        from repro.worldmodel import EntityType

        person = world.entities_of_type(EntityType.PERSON)[0]
        true_city = world.name(world.true_objects(person.entity_id, "birthPlace")[0])
        fact = _fact(world, person.name, "birthPlace", true_city, label=True)
        verdict = rule_checker.check(fact)
        assert not verdict.refuted
        assert verdict.decision is None

    def test_rules_never_confirm(self, rule_checker, factbench_small):
        for fact in factbench_small.facts()[:30]:
            assert rule_checker.check(fact).decision in (None, False)

    def test_rule_refutations_are_sound_on_generated_data(self, rule_checker, factbench_small):
        # Whenever the rules refute a dataset fact, the gold label must be False.
        screened = rule_checker.screen_dataset(factbench_small.facts())
        for fact in factbench_small:
            if screened[fact.fact_id].refuted:
                assert fact.label is False

    def test_rule_guarded_validator_skips_llm_on_refutation(self, world, rule_checker, gemma, verbalizer):
        from repro.worldmodel import EntityType

        person = world.entities_of_type(EntityType.PERSON)[2]
        other_person = world.entities_of_type(EntityType.PERSON)[3]
        fact = _fact(world, person.name, "birthPlace", other_person.name)
        guarded = RuleGuardedValidator(rule_checker, DirectKnowledgeAssessment(gemma, verbalizer))
        result = guarded.validate(fact)
        assert result.verdict is Verdict.FALSE
        assert result.prompt_tokens == 0
        assert result.method == "rules+dka"

    def test_rule_guarded_validator_delegates_otherwise(self, rule_checker, gemma, verbalizer, factbench_small):
        guarded = RuleGuardedValidator(rule_checker, DirectKnowledgeAssessment(gemma, verbalizer))
        clean = next(fact for fact in factbench_small if fact.label)
        result = guarded.validate(clean)
        assert result.prompt_tokens > 0


class TestHybridValidator:
    @pytest.fixture(scope="class")
    def hybrid(self, world, gemma, verbalizer):
        graph = build_reference_graph(world, exclude_fraction=0.2, seed=2)
        checker = KnowledgeLinker(graph)
        inner = DirectKnowledgeAssessment(gemma, verbalizer)
        return HybridValidator(checker, inner)

    def test_method_name_mentions_both_components(self, hybrid):
        assert hybrid.method_name == "hybrid(klinker+dka)"

    def test_validate_produces_verdicts(self, hybrid, factbench_small):
        subset = factbench_small.sample(10, seed=2)
        run = hybrid.validate_dataset(subset)
        assert len(run) == len(subset)
        answered = [r for r in run.results if r.verdict in (Verdict.TRUE, Verdict.FALSE)]
        assert answered

    def test_graph_opinion_abstains_in_uncertainty_band(self, hybrid, factbench_small):
        opinions = {hybrid.graph_opinion(fact) for fact in factbench_small.facts()[:20]}
        assert opinions <= {True, False, None}

    def test_llm_preferred_on_disagreement_with_low_graph_weight(self, world, gemma, verbalizer, factbench_small):
        graph = build_reference_graph(world, exclude_fraction=0.2, seed=2)
        checker = KnowledgeLinker(graph)
        inner = DirectKnowledgeAssessment(gemma, verbalizer)
        llm_first = HybridValidator(checker, inner, HybridConfig(graph_weight=0.0))
        # With zero graph weight the fused verdict always follows the LLM
        # whenever the LLM produced one.
        for fact in factbench_small.facts()[:10]:
            llm_verdict = inner.validate(fact).verdict
            if llm_verdict in (Verdict.TRUE, Verdict.FALSE):
                assert llm_first.validate(fact).verdict == llm_verdict
