"""Tests for JSONL dataset serialization."""

import json

from repro.datasets import fact_from_record, fact_to_record, load_dataset, save_dataset


class TestRoundTrip:
    def test_record_roundtrip_preserves_fields(self, factbench_small):
        fact = factbench_small[0]
        restored = fact_from_record(fact_to_record(fact))
        assert restored == fact

    def test_save_and_load(self, tmp_path, factbench_small):
        path = tmp_path / "facts.jsonl"
        save_dataset(factbench_small, path)
        loaded = load_dataset(path)
        assert loaded.name == factbench_small.name
        assert len(loaded) == len(factbench_small)
        assert loaded.facts() == factbench_small.facts()

    def test_saved_file_is_jsonl(self, tmp_path, factbench_small):
        path = save_dataset(factbench_small, tmp_path / "facts.jsonl")
        lines = path.read_text(encoding="utf-8").strip().splitlines()
        assert len(lines) == len(factbench_small)
        record = json.loads(lines[0])
        assert {"fact_id", "subject", "predicate", "object", "label"} <= set(record)

    def test_load_with_name_override(self, tmp_path, factbench_small):
        path = save_dataset(factbench_small, tmp_path / "facts.jsonl")
        loaded = load_dataset(path, name="custom")
        assert loaded.name == "custom"

    def test_load_skips_blank_lines(self, tmp_path, factbench_small):
        path = tmp_path / "facts.jsonl"
        save_dataset(factbench_small, path)
        content = path.read_text(encoding="utf-8") + "\n\n"
        path.write_text(content, encoding="utf-8")
        assert len(load_dataset(path)) == len(factbench_small)

    def test_load_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        dataset = load_dataset(path)
        assert len(dataset) == 0
        assert dataset.name == "empty"

    def test_optional_fields_default(self):
        record = {
            "fact_id": "x-1",
            "subject": "s",
            "predicate": "p",
            "object": "o",
            "label": True,
            "dataset": "x",
            "subject_name": "S",
            "object_name": "O",
            "predicate_name": "p",
        }
        fact = fact_from_record(record)
        assert fact.category == "role"
        assert fact.topic == "General"
        assert fact.base_predicate() == "p"
