"""Shared fixtures: a small world, datasets, corpus, models, and a runner.

Everything heavy is session-scoped so the suite stays fast; the sizes are
deliberately tiny compared to the paper scale but preserve the structural
properties the tests assert (class balance, schema diversity, corpus
composition).
"""

from __future__ import annotations

import pytest

from repro.benchmark import BenchmarkRunner, ExperimentConfig
from repro.datasets import build_dbpedia, build_factbench, build_yago
from repro.kg.verbalization import Verbalizer
from repro.llm import ModelRegistry
from repro.retrieval import MockSearchAPI, WebCorpusConfig, WebCorpusGenerator
from repro.worldmodel import WorldConfig, build_world


@pytest.fixture(scope="session")
def world():
    """A compact synthetic world shared by the whole suite."""
    return build_world(WorldConfig(scale=0.15, seed=11))


@pytest.fixture(scope="session")
def verbalizer(world):
    return Verbalizer(world)


@pytest.fixture(scope="session")
def registry(world):
    return ModelRegistry(world, seed=3)


@pytest.fixture(scope="session")
def gemma(registry):
    return registry.get("gemma2:9b")


@pytest.fixture(scope="session")
def factbench_small(world):
    return build_factbench(world, scale=0.02)


@pytest.fixture(scope="session")
def yago_small(world):
    return build_yago(world, scale=0.03)


@pytest.fixture(scope="session")
def dbpedia_small(world):
    return build_dbpedia(world, scale=0.006)


@pytest.fixture(scope="session")
def corpus_small(world, factbench_small):
    generator = WebCorpusGenerator(world, WebCorpusConfig(documents_per_fact=8, seed=5))
    facts = factbench_small.facts()[:25]
    return generator.build_corpus(facts)


@pytest.fixture(scope="session")
def search_api(corpus_small):
    return MockSearchAPI(corpus_small, default_num_results=20)


@pytest.fixture(scope="session")
def quick_config():
    return ExperimentConfig(
        scale=0.03,
        max_facts_per_dataset=44,
        world_scale=0.15,
        documents_per_fact=14,
        serp_results_per_query=25,
        seed=11,
    )


@pytest.fixture(scope="session")
def runner(quick_config):
    """A benchmark runner over a very small grid, shared across tests."""
    return BenchmarkRunner(quick_config)
