"""Tests for the DKA, GIV, and RAG validation strategies."""

import pytest

from repro.kg import DBPEDIA_ENCODING
from repro.llm import TelemetryCollector
from repro.validation import (
    DirectKnowledgeAssessment,
    GuidedIterativeVerification,
    RAGConfig,
    RAGValidator,
    ValidationPipeline,
    Verdict,
)


@pytest.fixture(scope="module")
def small_subset(factbench_small):
    return factbench_small.sample(16, seed=0)


class TestDKA:
    def test_validate_returns_result(self, gemma, verbalizer, small_subset):
        strategy = DirectKnowledgeAssessment(gemma, verbalizer)
        result = strategy.validate(small_subset[0])
        assert result.method == "dka"
        assert result.model == "gemma2:9b"
        assert result.verdict in (Verdict.TRUE, Verdict.FALSE, Verdict.INVALID)
        assert result.latency_seconds > 0

    def test_validate_dataset_covers_all_facts(self, gemma, verbalizer, small_subset):
        run = DirectKnowledgeAssessment(gemma, verbalizer).validate_dataset(small_subset)
        assert len(run) == len(small_subset)
        assert set(run.gold()) == {fact.fact_id for fact in small_subset}

    def test_telemetry_recorded(self, gemma, verbalizer, small_subset):
        telemetry = TelemetryCollector()
        strategy = DirectKnowledgeAssessment(gemma, verbalizer, telemetry)
        strategy.validate(small_subset[0])
        assert telemetry.summary(task="dka").calls == 1

    def test_deterministic(self, gemma, verbalizer, small_subset):
        strategy = DirectKnowledgeAssessment(gemma, verbalizer)
        first = [strategy.validate(fact).verdict for fact in small_subset]
        second = [strategy.validate(fact).verdict for fact in small_subset]
        assert first == second


class TestGIV:
    def test_method_names(self, gemma, verbalizer):
        assert GuidedIterativeVerification(gemma, few_shot=False).method_name == "giv-z"
        assert GuidedIterativeVerification(gemma, few_shot=True).method_name == "giv-f"

    def test_invalid_max_retries(self, gemma):
        with pytest.raises(ValueError):
            GuidedIterativeVerification(gemma, max_retries=-1)

    def test_run_produces_mostly_valid_verdicts(self, gemma, verbalizer, small_subset):
        run = GuidedIterativeVerification(
            gemma, few_shot=True, verbalizer=verbalizer
        ).validate_dataset(small_subset)
        assert run.invalid_count() <= len(small_subset) // 4

    def test_giv_latency_exceeds_dka(self, gemma, verbalizer, small_subset):
        dka_run = DirectKnowledgeAssessment(gemma, verbalizer).validate_dataset(small_subset)
        giv_run = GuidedIterativeVerification(
            gemma, few_shot=True, verbalizer=verbalizer
        ).validate_dataset(small_subset)
        assert sum(giv_run.latencies()) > sum(dka_run.latencies())

    def test_retries_recorded(self, registry, verbalizer, small_subset):
        # llama has the lowest format compliance, so retries are most likely.
        llama = registry.get("llama3.1:8b")
        run = GuidedIterativeVerification(
            llama, few_shot=False, verbalizer=verbalizer
        ).validate_dataset(small_subset)
        assert all(result.num_retries >= 0 for result in run.results)


class TestRAG:
    @pytest.fixture(scope="class")
    def rag_validator(self, gemma, verbalizer, search_api):
        config = RAGConfig(serp_results_per_query=15, selected_documents=5, max_evidence_chunks=6)
        return RAGValidator(
            model=gemma,
            search_api=search_api,
            kg_encoding=DBPEDIA_ENCODING,
            config=config,
            verbalizer=verbalizer,
        )

    @pytest.fixture(scope="class")
    def covered_facts(self, factbench_small, corpus_small):
        covered_ids = {doc.fact_id for doc in corpus_small}
        return [fact for fact in factbench_small if fact.fact_id in covered_ids][:10]

    def test_retrieve_produces_evidence(self, rag_validator, covered_facts):
        evidence, latency = rag_validator.retrieve(covered_facts[0])
        assert latency > 0
        assert evidence.statement
        assert evidence.questions
        assert evidence.chunks, "expected evidence chunks for a corpus-covered fact"

    def test_kg_origin_sources_filtered(self, rag_validator, covered_facts):
        for fact in covered_facts[:5]:
            evidence, __ = rag_validator.retrieve(fact)
            for document in evidence.documents:
                assert not document.source.endswith("wikipedia.org")
                assert not document.source.endswith("dbpedia.org")

    def test_selected_documents_bounded(self, rag_validator, covered_facts):
        evidence, __ = rag_validator.retrieve(covered_facts[1])
        assert len(evidence.documents) <= rag_validator.config.selected_documents
        assert len(evidence.chunks) <= rag_validator.config.max_evidence_chunks

    def test_validate_result_fields(self, rag_validator, covered_facts):
        result = rag_validator.validate(covered_facts[0])
        assert result.method == "rag"
        assert result.num_evidence_chunks > 0
        assert result.latency_seconds > 0

    def test_evidence_cache_shared_across_models(self, registry, verbalizer, search_api, covered_facts):
        cache = {}
        config = RAGConfig(serp_results_per_query=15, selected_documents=5)
        validators = [
            RAGValidator(
                model=registry.get(name),
                search_api=search_api,
                kg_encoding=DBPEDIA_ENCODING,
                config=config,
                verbalizer=verbalizer,
                evidence_cache=cache,
            )
            for name in ("gemma2:9b", "mistral:7b")
        ]
        validators[0].validate(covered_facts[0])
        assert covered_facts[0].fact_id in cache
        cached_evidence, __ = cache[covered_facts[0].fact_id]
        evidence, __ = validators[1].retrieve(covered_facts[0])
        assert evidence is cached_evidence

    def test_rag_slower_than_dka(self, rag_validator, gemma, verbalizer, covered_facts):
        dka = DirectKnowledgeAssessment(gemma, verbalizer)
        rag_latency = rag_validator.validate(covered_facts[2]).latency_seconds
        dka_latency = dka.validate(covered_facts[2]).latency_seconds
        assert rag_latency > dka_latency * 2


class TestPipeline:
    def test_run_matrix_shape(self, registry, verbalizer, small_subset):
        from repro.validation import run_matrix

        models = {name: registry.get(name) for name in ("gemma2:9b", "mistral:7b")}
        factories = {
            "dka": lambda model: DirectKnowledgeAssessment(model, verbalizer),
        }
        results = run_matrix(factories, models, [small_subset])
        assert set(results) == {"dka"}
        assert set(results["dka"][small_subset.name]) == {"gemma2:9b", "mistral:7b"}

    def test_progress_callback_invoked(self, gemma, verbalizer, small_subset):
        calls = []
        pipeline = ValidationPipeline(progress=lambda method, done, total: calls.append((done, total)))
        pipeline.run(DirectKnowledgeAssessment(gemma, verbalizer), small_subset)
        assert calls[-1] == (len(small_subset), len(small_subset))
