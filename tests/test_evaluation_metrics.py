"""Tests for metrics, efficiency, Pareto, and UpSet analyses."""

import pytest

from repro.evaluation import (
    TradeoffPoint,
    accuracy,
    all_model_intersection_size,
    average_response_time,
    build_tradeoff_points,
    classwise_f1,
    confusion_counts,
    exclusive_intersections,
    iqr_filter,
    pareto_frontier,
    precision_recall_f1,
    random_guess_f1,
    summarize_latencies,
    upset_intersections,
)


class TestConfusionAndF1:
    def test_confusion_counts(self):
        gold = {"a": True, "b": True, "c": False, "d": False, "e": True}
        predictions = {"a": True, "b": False, "c": False, "d": True, "e": None}
        counts = confusion_counts(predictions, gold)
        assert (counts.true_positive, counts.false_negative) == (1, 1)
        assert (counts.true_negative, counts.false_positive) == (1, 1)
        assert counts.unanswered == 1
        assert counts.total == 5

    def test_precision_recall_f1_zero_safe(self):
        assert precision_recall_f1(0, 0, 0) == (0.0, 0.0, 0.0)

    def test_perfect_predictions(self):
        gold = {"a": True, "b": False}
        scores = classwise_f1({"a": True, "b": False}, gold)
        assert scores.f1_true == 1.0 and scores.f1_false == 1.0

    def test_always_true_predictor_on_imbalanced_data(self):
        gold = {f"f{i}": True for i in range(99)}
        gold["neg"] = False
        predictions = {fact_id: True for fact_id in gold}
        scores = classwise_f1(predictions, gold)
        assert scores.f1_true > 0.99
        assert scores.f1_false == 0.0

    def test_classwise_f1_hand_computed(self):
        gold = {"a": True, "b": True, "c": False, "d": False}
        predictions = {"a": True, "b": False, "c": True, "d": False}
        scores = classwise_f1(predictions, gold)
        assert scores.f1_true == pytest.approx(0.5)
        assert scores.f1_false == pytest.approx(0.5)

    def test_accuracy(self):
        gold = {"a": True, "b": False, "c": True}
        assert accuracy({"a": True, "b": True, "c": None}, gold) == pytest.approx(1 / 3)
        assert accuracy({}, {}) == 0.0

    def test_random_guess_f1_balanced(self):
        f1_t, f1_f = random_guess_f1(0.5)
        assert f1_t == pytest.approx(0.5)
        assert f1_f == pytest.approx(0.5)

    def test_random_guess_f1_imbalanced_matches_paper_shape(self):
        # Aggregate positive rate of the three datasets is roughly 0.77;
        # the paper's random baseline is ~0.62 for F1(T) and ~0.29 for F1(F).
        f1_t, f1_f = random_guess_f1(0.77)
        assert f1_t > f1_f
        assert 0.55 < f1_t < 0.70
        assert 0.25 < f1_f < 0.40


class TestEfficiency:
    def test_iqr_filter_removes_outlier(self):
        values = [0.2, 0.21, 0.19, 0.22, 0.2, 5.0]
        filtered = iqr_filter(values)
        assert 5.0 not in filtered
        assert len(filtered) == 5

    def test_iqr_filter_small_sample_noop(self):
        assert iqr_filter([1.0, 100.0]) == [1.0, 100.0]

    def test_average_response_time(self):
        assert average_response_time([0.2, 0.2, 0.2, 0.2, 10.0]) == pytest.approx(0.2)
        assert average_response_time([]) == 0.0

    def test_summarize_latencies(self):
        summary = summarize_latencies([0.1, 0.2, 0.3, 0.4, 9.0])
        assert summary.raw_count == 5
        assert summary.filtered_count == 4
        assert summary.mean_seconds == pytest.approx(0.25)
        assert summary.median_seconds == pytest.approx(0.25)


class TestPareto:
    def _points(self):
        return [
            TradeoffPoint("m1", "dka", "d", 0.2, 0.70, 0.60),
            TradeoffPoint("m1", "rag", "d", 2.0, 0.90, 0.85),
            TradeoffPoint("m2", "giv-f", "d", 0.6, 0.80, 0.70),
            TradeoffPoint("m2", "dka", "d", 0.3, 0.60, 0.40),  # dominated
        ]

    def test_frontier_members(self):
        frontier = pareto_frontier(self._points(), metric="f1_false")
        labels = {point.label() for point in frontier}
        assert labels == {"m1/dka", "m2/giv-f", "m1/rag"}

    def test_dominated_point_excluded(self):
        frontier = pareto_frontier(self._points(), metric="f1_true")
        assert "m2/dka" not in {point.label() for point in frontier}

    def test_frontier_sorted_by_time(self):
        frontier = pareto_frontier(self._points())
        times = [point.time_seconds for point in frontier]
        assert times == sorted(times)

    def test_invalid_metric(self):
        with pytest.raises(ValueError):
            pareto_frontier(self._points(), metric="accuracy")

    def test_build_tradeoff_points_joins_tables(self):
        f1_table = {"d": {"dka": {"m1": {"f1_true": 0.7, "f1_false": 0.6}}}}
        time_table = {"d": {"dka": {"m1": 0.2}}}
        points = build_tradeoff_points(f1_table, time_table)
        assert len(points) == 1
        assert points[0].time_seconds == 0.2

    def test_build_tradeoff_points_skips_missing_time(self):
        f1_table = {"d": {"dka": {"m1": {"f1_true": 0.7, "f1_false": 0.6}}}}
        assert build_tradeoff_points(f1_table, {}) == []


class TestUpset:
    def test_exclusive_intersections_partition_union(self):
        sets = {"a": {1, 2, 3}, "b": {2, 3, 4}, "c": {3}}
        cells = exclusive_intersections(sets)
        total = sum(len(items) for items in cells.values())
        assert total == len({1, 2, 3, 4})
        assert cells[frozenset({"a", "b", "c"})] == {3}
        assert cells[frozenset({"a"})] == {1}

    def test_upset_bars_sorted_by_count(self):
        correct = {"m1": ["f1", "f2", "f3"], "m2": ["f2", "f3"], "m3": ["f3"]}
        bars = upset_intersections(correct)
        counts = [bar.count for bar in bars]
        assert counts == sorted(counts, reverse=True)

    def test_all_model_intersection(self):
        correct = {"m1": ["f1", "f2"], "m2": ["f2", "f3"]}
        assert all_model_intersection_size(correct) == 1
        assert all_model_intersection_size({}) == 0

    def test_min_count_filter(self):
        correct = {"m1": ["f1"], "m2": ["f2"]}
        assert upset_intersections(correct, min_count=2) == []

    def test_cell_label(self):
        correct = {"m1": ["f1"], "m2": ["f1"]}
        bars = upset_intersections(correct)
        assert bars[0].label() == "m1 & m2"
