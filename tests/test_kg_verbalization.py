"""Tests for rule-based triple verbalization."""

from repro.kg import DBPEDIA_ENCODING, YAGO_ENCODING, Triple, Verbalizer


class TestStatements:
    def test_known_predicate_uses_template(self):
        verbalizer = Verbalizer()
        triple = DBPEDIA_ENCODING.encode_triple("Marie Curie", "birthPlace", "Warsaw Town")
        assert verbalizer.statement(triple) == "Marie Curie was born in Warsaw Town."

    def test_unknown_predicate_falls_back_to_generic(self):
        verbalizer = Verbalizer()
        triple = Triple("Marie_Curie", "http://dbpedia.org/ontology/firstAscentOf", "Some_Peak")
        sentence = verbalizer.statement(triple)
        assert "Marie Curie" in sentence and "Some Peak" in sentence
        assert "first ascent of" in sentence

    def test_yago_has_prefix_predicates_resolved(self):
        verbalizer = Verbalizer()
        triple = Triple("<Marie_Curie>", "<hasWonPrize>", "<Halcyon_Prize>")
        # hasWonPrize is not a base relation, but hasXxx stripping is attempted;
        # wonPrize is unknown so the generic rendering is used with readable words.
        sentence = verbalizer.statement(triple)
        assert "Marie Curie" in sentence and "Halcyon Prize" in sentence

    def test_yago_is_married_to_maps_to_spouse_template(self):
        verbalizer = Verbalizer()
        triple = Triple("<Alice_Ashcombe>", "<isMarriedTo>", "<Bob_Belgrave>")
        # isMarriedTo does not map onto the schema, so generic rendering applies.
        sentence = verbalizer.statement(triple)
        assert sentence.endswith(".")
        assert "Alice Ashcombe" in sentence

    def test_statement_uses_world_names_when_available(self, world, verbalizer):
        person = world.entities_of_type(list(world.by_type)[0])[0]
        # encode a triple whose labels match a real world entity name
        triple = DBPEDIA_ENCODING.encode_triple(person.name, "birthPlace", "Nowhere Town")
        sentence = verbalizer.statement(triple)
        assert person.name in sentence


class TestQuestions:
    def test_question_from_template(self):
        verbalizer = Verbalizer()
        triple = DBPEDIA_ENCODING.encode_triple("Marie Curie", "birthPlace", "Warsaw Town")
        question = verbalizer.question(triple, variant=0)
        assert question == "Where was Marie Curie born?"

    def test_question_variants_cycle(self):
        verbalizer = Verbalizer()
        triple = DBPEDIA_ENCODING.encode_triple("Marie Curie", "birthPlace", "Warsaw Town")
        variants = {verbalizer.question(triple, variant=i) for i in range(6)}
        assert len(variants) == 3  # birthPlace has three question templates

    def test_question_generic_for_unknown_predicate(self):
        verbalizer = Verbalizer()
        triple = Triple("Marie_Curie", "obscureProperty", "Value")
        question = verbalizer.question(triple)
        assert question.startswith("What is the obscure property of")


class TestLabels:
    def test_subject_and_object_labels(self):
        verbalizer = Verbalizer()
        triple = YAGO_ENCODING.encode_triple("Alice Ashcombe", "wasBornIn", "Brimworth")
        assert verbalizer.subject_label(triple) == "Alice Ashcombe"
        assert verbalizer.object_label(triple) == "Brimworth"
