"""Tests for the command-line interface that regenerates tables and figures."""

import io

import pytest

from repro.benchmark import EXPERIMENTS, run_experiment
from repro.benchmark.cli import build_parser, build_service_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.experiment == "table5"
        assert args.scale == pytest.approx(0.05)

    def test_experiment_choices_cover_all_tables_and_figures(self):
        expected = {
            "table2", "table3", "table4", "table5", "table6", "table7",
            "table8", "table9", "figure2", "figure3", "figure4",
            "corpus-stats", "ablation", "baselines",
        }
        assert expected == set(EXPERIMENTS)

    def test_invalid_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--experiment", "table99"])


class TestRunExperiment:
    def test_table2_renders(self, runner):
        rendered = run_experiment("table2", runner)
        assert "Table 2" in rendered
        assert "factbench" in rendered

    def test_table4_renders_without_running_grid(self, runner):
        rendered = run_experiment("table4", runner)
        assert "Sliding Window" in rendered

    def test_unknown_experiment_raises(self, runner):
        with pytest.raises(KeyError):
            run_experiment("tableX", runner)


class TestServiceCommands:
    def test_serve_parser_defaults(self):
        args = build_service_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 8765
        assert args.methods == ("dka", "giv-z")

    def test_loadgen_parser_parses_mix(self):
        args = build_service_parser().parse_args(
            ["loadgen", "--requests", "50", "--concurrency", "4",
             "--methods", "dka", "--models", "gemma2:9b", "--no-cache"]
        )
        assert args.command == "loadgen"
        assert (args.requests, args.concurrency) == (50, 4)
        assert args.methods == ("dka",) and args.models == ("gemma2:9b",)
        assert args.no_cache

    def test_service_args_validated_before_substrate_build(self):
        with pytest.raises(SystemExit, match="unknown model"):
            main(["loadgen", "--models", "gemma2:9B"], stream=io.StringIO())
        with pytest.raises(SystemExit, match="unknown method"):
            main(["loadgen", "--methods", "gda"], stream=io.StringIO())
        with pytest.raises(SystemExit, match="unknown dataset"):
            main(["serve", "--datasets", "wikidata"], stream=io.StringIO())
        # Empty CSVs fail fast too, instead of starting an unrestricted
        # server or crashing mid-run.
        with pytest.raises(SystemExit, match="at least one"):
            main(["serve", "--methods", ","], stream=io.StringIO())
        with pytest.raises(SystemExit, match="at least one"):
            main(["loadgen", "--models", ""], stream=io.StringIO())

    def test_loadgen_end_to_end(self):
        stream = io.StringIO()
        code = main(
            ["loadgen", "--requests", "40", "--concurrency", "8",
             "--scale", "0.02", "--max-facts", "10", "--world-scale", "0.12",
             "--methods", "dka", "--models", "gemma2:9b",
             "--time-scale", "0.001"],
            stream=stream,
        )
        out = stream.getvalue()
        assert code == 0
        assert "Closed-loop load run: 40 requests" in out
        assert "throughput" in out and "p99 latency" in out
        assert "Service metrics" in out


class TestMain:
    def test_main_writes_output_file(self, tmp_path):
        output = tmp_path / "table2.txt"
        stream = io.StringIO()
        code = main(
            [
                "--experiment", "table2",
                "--scale", "0.01",
                "--max-facts", "12",
                "--world-scale", "0.12",
                "--documents-per-fact", "6",
                "--output", str(output),
            ],
            stream=stream,
        )
        assert code == 0
        assert "Table 2" in stream.getvalue()
        assert output.read_text(encoding="utf-8").strip()
