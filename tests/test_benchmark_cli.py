"""Tests for the command-line interface that regenerates tables and figures."""

import io

import pytest

from repro.benchmark import EXPERIMENTS, run_experiment
from repro.benchmark.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.experiment == "table5"
        assert args.scale == pytest.approx(0.05)

    def test_experiment_choices_cover_all_tables_and_figures(self):
        expected = {
            "table2", "table3", "table4", "table5", "table6", "table7",
            "table8", "table9", "figure2", "figure3", "figure4",
            "corpus-stats", "ablation", "baselines",
        }
        assert expected == set(EXPERIMENTS)

    def test_invalid_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--experiment", "table99"])


class TestRunExperiment:
    def test_table2_renders(self, runner):
        rendered = run_experiment("table2", runner)
        assert "Table 2" in rendered
        assert "factbench" in rendered

    def test_table4_renders_without_running_grid(self, runner):
        rendered = run_experiment("table4", runner)
        assert "Sliding Window" in rendered

    def test_unknown_experiment_raises(self, runner):
        with pytest.raises(KeyError):
            run_experiment("tableX", runner)


class TestMain:
    def test_main_writes_output_file(self, tmp_path):
        output = tmp_path / "table2.txt"
        stream = io.StringIO()
        code = main(
            [
                "--experiment", "table2",
                "--scale", "0.01",
                "--max-facts", "12",
                "--world-scale", "0.12",
                "--documents-per-fact", "6",
                "--output", str(output),
            ],
            stream=stream,
        )
        assert code == 0
        assert "Table 2" in stream.getvalue()
        assert output.read_text(encoding="utf-8").strip()
