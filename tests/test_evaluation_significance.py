"""Tests for bootstrap confidence intervals and McNemar's paired test."""

import pytest

from repro.evaluation import bootstrap_f1_interval, mcnemar_test
from repro.validation import ValidationResult, ValidationRun, Verdict


def _run(model, verdict_flags, gold_flags, method="dka"):
    run = ValidationRun(method=method, model=model, dataset="synthetic")
    for index, (verdict, gold) in enumerate(zip(verdict_flags, gold_flags)):
        run.add(
            ValidationResult(
                fact_id=f"f{index}",
                verdict=Verdict.from_bool(verdict) if verdict is not None else Verdict.INVALID,
                gold_label=gold,
                model=model,
                method=method,
                latency_seconds=0.1,
                prompt_tokens=5,
                completion_tokens=5,
            )
        )
    return run


class TestBootstrap:
    def test_interval_contains_point_estimate(self):
        gold = [True, True, False, True, False, True, False, True] * 4
        predictions = [True, False, False, True, True, True, False, True] * 4
        run = _run("m", predictions, gold)
        interval = bootstrap_f1_interval(run, metric="f1_true", num_samples=200, seed=1)
        assert interval.lower <= interval.point <= interval.upper
        assert 0.0 <= interval.lower <= interval.upper <= 1.0

    def test_perfect_run_has_degenerate_interval(self):
        gold = [True, False] * 10
        run = _run("m", gold, gold)
        interval = bootstrap_f1_interval(run, metric="f1_true", num_samples=100)
        assert interval.point == 1.0
        assert interval.lower == pytest.approx(1.0)

    def test_interval_deterministic_given_seed(self):
        gold = [True, False, True, True, False] * 4
        predictions = [True, True, True, False, False] * 4
        run = _run("m", predictions, gold)
        first = bootstrap_f1_interval(run, num_samples=100, seed=5)
        second = bootstrap_f1_interval(run, num_samples=100, seed=5)
        assert first == second

    def test_empty_run(self):
        interval = bootstrap_f1_interval(_run("m", [], []))
        assert interval.point == 0.0
        assert interval.width() == 0.0

    def test_invalid_metric(self):
        with pytest.raises(ValueError):
            bootstrap_f1_interval(_run("m", [True], [True]), metric="accuracy")


class TestMcNemar:
    def test_identical_runs_not_significant(self):
        gold = [True, False] * 20
        predictions = [True, True] * 20
        run_a = _run("a", predictions, gold)
        run_b = _run("b", predictions, gold)
        result = mcnemar_test(run_a, run_b)
        assert result.b == 0 and result.c == 0
        assert result.p_value == 1.0
        assert not result.significant

    def test_one_sided_improvement_detected(self):
        gold = [True] * 40
        run_a = _run("a", [True] * 40, gold)           # always right
        run_b = _run("b", [False] * 30 + [True] * 10, gold)  # mostly wrong
        result = mcnemar_test(run_a, run_b)
        assert result.b == 30 and result.c == 0
        assert result.significant

    def test_symmetric_disagreement_not_significant(self):
        gold = [True] * 20
        run_a = _run("a", [True] * 10 + [False] * 10, gold)
        run_b = _run("b", [False] * 10 + [True] * 10, gold)
        result = mcnemar_test(run_a, run_b)
        assert result.b == result.c == 10
        assert not result.significant

    def test_p_value_in_unit_interval(self):
        gold = [True, False, True, False, True]
        run_a = _run("a", [True, False, False, False, True], gold)
        run_b = _run("b", [False, False, True, True, True], gold)
        result = mcnemar_test(run_a, run_b)
        assert 0.0 <= result.p_value <= 1.0
