"""Epoch wiring through the online service: ingest, cache invalidation, mixes.

Covers the PR 3 service-side contract:

* ``verdict_cache_key`` / ``VerdictCache`` carry the store epoch, so a
  verdict cached before an ingest never answers a post-ingest request;
* ``ValidationService.apply_mutations`` quiesces in-flight work, applies
  the batch, and advances the epoch visible on every subsequent response;
* the mixed read/write load-generator schedule applies ingest batches
  mid-run and the report splits verdicts by the epoch they were served at.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.benchmark import BenchmarkRunner, ExperimentConfig
from repro.datasets import LabeledFact
from repro.kg import Triple
from repro.retrieval.corpus import Document
from repro.service import (
    IngestRequest,
    LoadGenerator,
    RequestOutcome,
    ServiceConfig,
    ServiceRequest,
    ValidationService,
    VerdictCache,
    build_mixed_workload,
    verdict_cache_key,
)
from repro.store import Mutation
from repro.validation import ValidationResult, Verdict


@pytest.fixture(scope="module")
def store_service_config():
    return ExperimentConfig(
        scale=0.03,
        max_facts_per_dataset=12,
        world_scale=0.15,
        methods=("dka", "rag"),
        datasets=("factbench",),
        models=("gemma2:9b",),
        include_commercial_in_grid=False,
        seed=11,
    )


@pytest.fixture()
def runner(store_service_config):
    # Function-scoped: each test gets a fresh store epoch counter.
    return BenchmarkRunner(store_service_config)


def _fact(fact_id: str = "fb-1") -> LabeledFact:
    return LabeledFact(
        fact_id=fact_id,
        triple=Triple("Alice", "worksFor", "Acme"),
        label=True,
        dataset="factbench",
        subject_name="Alice",
        object_name="Acme",
        predicate_name="worksFor",
    )


def _result(fact: LabeledFact, verdict: Verdict) -> ValidationResult:
    return ValidationResult(
        fact_id=fact.fact_id,
        verdict=verdict,
        gold_label=fact.label,
        model="m",
        method="dka",
        latency_seconds=0.1,
        prompt_tokens=1,
        completion_tokens=1,
        raw_response="",
    )


def _news_doc(index: int, fact: LabeledFact) -> Document:
    return Document(
        doc_id=f"ingest-{index}",
        url=f"https://newswire.example/{index}",
        title=f"{fact.subject_name} update",
        text=(
            f"Breaking: {fact.subject_name} {fact.predicate_name} "
            f"{fact.object_name}. Sources confirm the link between "
            f"{fact.subject_name} and {fact.object_name}."
        ),
        source="newswire.example",
        fact_id=fact.fact_id,
        kind="news",
    )


class TestEpochKeyedCache:
    def test_same_fact_different_epochs_never_collide(self):
        fact = _fact()
        keys = {verdict_cache_key(fact, "dka", "m", epoch) for epoch in (0, 1, 2)}
        assert len(keys) == 3

    def test_cache_entries_are_epoch_scoped(self):
        cache = VerdictCache(capacity=64, shards=4)
        fact = _fact()
        old = _result(fact, Verdict.TRUE)
        cache.put(fact, "dka", "m", old, epoch=1)
        assert cache.get(fact, "dka", "m", epoch=1) == old
        assert cache.get(fact, "dka", "m", epoch=2) is None
        new = _result(fact, Verdict.FALSE)
        cache.put(fact, "dka", "m", new, epoch=2)
        # Both epochs stay addressable until LRU pressure evicts them.
        assert cache.get(fact, "dka", "m", epoch=1) == old
        assert cache.get(fact, "dka", "m", epoch=2) == new


class TestApplyMutations:
    def test_apply_requires_a_store(self, runner):
        service = ValidationService.from_runner(runner, ServiceConfig())

        async def go():
            async with service:
                with pytest.raises(RuntimeError, match="no VersionedKnowledgeStore"):
                    await service.apply_mutations([Mutation.add_triple("a", "p", "b")])

        asyncio.run(go())

    def test_ingest_bumps_epoch_and_invalidates_cached_verdicts(self, runner):
        store = runner.versioned_store("factbench")
        service = ValidationService.from_runner(runner, ServiceConfig(), store=store)
        fact = runner.dataset("factbench")[0]

        async def go():
            async with service:
                first = await service.submit(ServiceRequest(fact, "dka", "gemma2:9b"))
                repeat = await service.submit(ServiceRequest(fact, "dka", "gemma2:9b"))
                report = await service.apply_mutations(
                    [Mutation.add_triple("Ingested", "worksFor", "Org")]
                )
                after = await service.submit(ServiceRequest(fact, "dka", "gemma2:9b"))
                again = await service.submit(ServiceRequest(fact, "dka", "gemma2:9b"))
                return first, repeat, report, after, again

        first, repeat, report, after, again = asyncio.run(go())
        assert not first.cached and repeat.cached
        assert report.epoch == first.epoch + 1
        # The epoch bump makes the pre-ingest entry stale: a fresh judgement
        # runs, then repeat traffic at the new epoch hits again.
        assert not after.cached and after.epoch == report.epoch
        assert again.cached and again.epoch == report.epoch
        snapshot = service.metrics.snapshot()
        assert snapshot.ingests == 1 and snapshot.ingested_ops == 1

    def test_ingest_waits_for_inflight_requests_to_drain(self, runner):
        store = runner.versioned_store("factbench")
        service = ValidationService.from_runner(
            runner,
            ServiceConfig(enable_cache=False, max_batch_size=1, time_scale=0.02),
            store=store,
        )
        facts = list(runner.dataset("factbench"))[:3]

        async def go():
            async with service:
                reads = [
                    asyncio.create_task(
                        service.submit(ServiceRequest(fact, "dka", "gemma2:9b"))
                    )
                    for fact in facts
                ]
                await asyncio.sleep(0.005)  # reads admitted, batches in flight
                report = await service.apply_mutations(
                    [Mutation.add_triple("Mid", "worksFor", "Load")]
                )
                responses = await asyncio.gather(*reads)
                return report, responses

        report, responses = asyncio.run(go())
        # Every read admitted before the ingest completed at the old epoch —
        # the write waited for the drain instead of mutating under them.
        assert all(response.epoch == report.epoch - 1 for response in responses)
        assert all(response.outcome is RequestOutcome.COMPLETED for response in responses)

    def test_rag_verdicts_refresh_against_ingested_evidence(self, runner):
        store = runner.versioned_store("factbench")
        service = ValidationService.from_runner(
            runner, ServiceConfig(), store=store
        )
        dataset = runner.dataset("factbench")
        facts = dataset.facts()[:4]

        async def go():
            async with service:
                before = [
                    await service.submit(ServiceRequest(fact, "rag", "gemma2:9b"))
                    for fact in facts
                ]
                await service.apply_mutations(
                    [Mutation.add_document(_news_doc(i, fact)) for i, fact in enumerate(facts)]
                )
                after = [
                    await service.submit(ServiceRequest(fact, "rag", "gemma2:9b"))
                    for fact in facts
                ]
                return before, after

        before, after = asyncio.run(go())
        # Post-ingest responses were all re-judged (epoch miss), with more
        # evidence available than before.
        assert all(not response.cached for response in after)
        assert all(b.epoch + 1 == a.epoch for b, a in zip(before, after))
        assert all(
            a.result.num_evidence_chunks >= b.result.num_evidence_chunks
            for b, a in zip(before, after)
        )


class TestRunnerStore:
    def test_versioned_store_is_cached_per_dataset(self, runner):
        assert runner.versioned_store("factbench") is runner.versioned_store("factbench")

    def test_conflicting_reconfiguration_is_an_error_not_silence(self, runner):
        from repro.store import StoreConfig

        runner.versioned_store("factbench")
        with pytest.raises(ValueError, match="already built"):
            runner.versioned_store(
                "factbench", StoreConfig(index_rebuild_fraction=0.1)
            )

    def test_rag_validator_invalidate_evidence(self, runner):
        strategy = runner.build_strategy(
            "rag", "factbench", runner.registry.get("gemma2:9b")
        )
        fact = runner.dataset("factbench")[0]
        strategy.retrieve(fact)
        assert fact.fact_id in strategy.evidence_cache
        assert strategy.invalidate_evidence(["not-present"]) == 0
        assert strategy.invalidate_evidence([fact.fact_id]) == 1
        strategy.retrieve(fact)
        assert strategy.invalidate_evidence() == 1
        assert strategy.evidence_cache == {}


class TestMixedWorkload:
    def test_mixed_schedule_is_deterministic_with_spliced_writes(self, runner):
        dataset = runner.dataset("factbench")
        batches = [[Mutation.add_triple("a", "p", "b")], [Mutation.add_triple("c", "p", "d")]]
        first = build_mixed_workload([dataset], ["dka"], ["gemma2:9b"], 30, batches, seed=5)
        second = build_mixed_workload([dataset], ["dka"], ["gemma2:9b"], 30, batches, seed=5)
        assert len(first) == 32
        positions = [i for i, item in enumerate(first) if isinstance(item, IngestRequest)]
        assert positions == [10, 21]  # evenly spaced, shifted by prior splices
        assert [type(item) for item in first] == [type(item) for item in second]

    def test_ingest_request_requires_mutations(self):
        with pytest.raises(ValueError):
            IngestRequest(())

    def test_loadgen_applies_writes_and_reports_epochs(self, runner):
        store = runner.versioned_store("factbench")
        service = ValidationService.from_runner(
            runner, ServiceConfig(time_scale=0.001), store=store
        )
        dataset = runner.dataset("factbench")
        base_epoch = store.epoch
        batches = [
            [Mutation.add_document(_news_doc(i, dataset[0]))] for i in range(2)
        ]
        workload = build_mixed_workload(
            [dataset], ["dka"], ["gemma2:9b"], 40, batches, seed=2
        )
        report = LoadGenerator(service, workload, concurrency=6).run_sync()
        assert report.total == 42
        assert report.ingests == 2
        assert report.completed == 40
        assert store.epoch == base_epoch + 2
        served = report.epochs_served()
        assert served[0] == base_epoch and served[-1] == base_epoch + 2
        # Per-epoch verdict tables partition the completed reads.
        assert sum(len(report.verdicts(epoch=epoch)) for epoch in served) >= len(
            report.verdicts()
        )
        assert report.snapshot.ingests == 2
