"""Progress-callback contract and the ``run_facts`` micro-batch entry point.

Both pipeline flavours must report work through the same
``progress(label, done, total)`` payload, with the label carrying the
strategy/dataset identifiers (``method/dataset`` per fact on the serial
path, ``method/dataset/model`` per cell on the parallel path).
"""

from __future__ import annotations

import pytest

from repro.validation import (
    DirectKnowledgeAssessment,
    ParallelValidationPipeline,
    ValidationPipeline,
    progress_label,
)


def _square(value):
    return value * value


@pytest.fixture()
def strategy(gemma, verbalizer):
    return DirectKnowledgeAssessment(gemma, verbalizer)


@pytest.fixture()
def small_dataset(factbench_small):
    return factbench_small.sample(6, seed=3)


class TestProgressLabel:
    def test_label_shapes(self):
        assert progress_label("dka", "factbench") == "dka/factbench"
        assert progress_label("rag", "yago", "gemma2:9b") == "rag/yago/gemma2:9b"


class TestSerialProgress:
    def test_run_reports_method_and_dataset_per_fact(self, strategy, small_dataset):
        calls = []
        pipeline = ValidationPipeline(progress=lambda *call: calls.append(call))
        pipeline.run(strategy, small_dataset)
        total = len(small_dataset)
        assert calls == [("dka/factbench", done, total) for done in range(1, total + 1)]

    def test_run_facts_uses_explicit_dataset_label(self, strategy, small_dataset):
        calls = []
        pipeline = ValidationPipeline(progress=lambda *call: calls.append(call))
        pipeline.run_facts(strategy, small_dataset.facts()[:3], dataset="factbench")
        assert [call[0] for call in calls] == ["dka/factbench"] * 3
        calls.clear()
        pipeline.run_facts(strategy, small_dataset.facts()[:2])
        assert [call[0] for call in calls] == ["dka/adhoc"] * 2


class TestRunFacts:
    def test_run_is_composed_of_run_facts(self, strategy, small_dataset):
        pipeline = ValidationPipeline()
        run = pipeline.run(strategy, small_dataset)
        results = pipeline.run_facts(strategy, small_dataset.facts(), dataset=small_dataset.name)
        assert run.results == results
        assert (run.method, run.dataset) == ("dka", small_dataset.name)

    def test_run_facts_preserves_order_and_handles_empty(self, strategy, small_dataset):
        pipeline = ValidationPipeline()
        facts = small_dataset.facts()
        results = pipeline.run_facts(strategy, facts, dataset=small_dataset.name)
        assert [result.fact_id for result in results] == [fact.fact_id for fact in facts]
        assert pipeline.run_facts(strategy, [], dataset="empty") == []


class TestParallelProgress:
    def test_in_process_path_reports_cells(self):
        calls = []
        pipeline = ParallelValidationPipeline(
            workers=1, progress=lambda *call: calls.append(call)
        )
        cells = [("dka", "factbench", "gemma2:9b"), ("dka", "yago", "qwen2.5:7b")]
        pipeline.map_cells(lambda cell: cell[0], cells)
        assert calls == [
            ("dka/factbench/gemma2:9b", 1, 2),
            ("dka/yago/qwen2.5:7b", 2, 2),
        ]

    def test_forked_pool_reports_cells_in_submission_order(self):
        if not ParallelValidationPipeline.supports_fork():
            pytest.skip("fork start method unavailable")
        calls = []
        pipeline = ParallelValidationPipeline(
            workers=2, progress=lambda *call: calls.append(call)
        )
        values = [5, 3, 1, 8]
        assert pipeline.map_cells(_square, values) == [25, 9, 1, 64]
        assert calls == [("5", 1, 4), ("3", 2, 4), ("1", 3, 4), ("8", 4, 4)]

    def test_payload_shape_matches_serial_contract(self, strategy, small_dataset):
        # One callback implementation can consume both pipelines: every call
        # is (str label containing the identifiers, int done, int total).
        collected = []

        def callback(label, done, total):
            collected.append((label, done, total))

        ValidationPipeline(progress=callback).run(strategy, small_dataset)
        ParallelValidationPipeline(workers=1, progress=callback).map_cells(
            lambda cell: cell, [("dka", "factbench", "gemma2:9b")]
        )
        for label, done, total in collected:
            assert isinstance(label, str) and "dka" in label and "factbench" in label
            assert isinstance(done, int) and isinstance(total, int)
            assert 1 <= done <= total
