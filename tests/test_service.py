"""Tests for the online validation service: batching, shedding, parity, TCP."""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.benchmark import BenchmarkRunner, ExperimentConfig
from repro.service import (
    LoadGenerator,
    MetricsSnapshot,
    RequestOutcome,
    ServiceConfig,
    ServiceRequest,
    ServiceResponse,
    TCPValidationFrontend,
    ValidationService,
    build_workload,
    percentile,
)
from repro.validation import ValidationPipeline


@pytest.fixture(scope="module")
def service_config():
    return ExperimentConfig(
        scale=0.03,
        max_facts_per_dataset=14,
        world_scale=0.15,
        methods=("dka", "giv-z"),
        datasets=("factbench", "yago"),
        models=("gemma2:9b", "qwen2.5:7b"),
        include_commercial_in_grid=False,
        seed=11,
    )


@pytest.fixture(scope="module")
def service_runner(service_config):
    return BenchmarkRunner(service_config)


def _drive(service, requests):
    """Run a list of requests concurrently through a service's lifecycle."""

    async def go():
        async with service:
            return await asyncio.gather(*(service.submit(req) for req in requests))

    return asyncio.run(go())


class TestVerdictParity:
    def test_service_results_equal_offline_pipeline(self, service_runner):
        dataset = service_runner.dataset("factbench")
        service = ValidationService.from_runner(
            service_runner, ServiceConfig(enable_cache=False, max_batch_size=4)
        )
        requests = [ServiceRequest(fact, "dka", "gemma2:9b") for fact in dataset]
        responses = _drive(service, requests)

        offline = ValidationPipeline().run(
            service_runner.build_strategy("dka", "factbench", service_runner.registry.get("gemma2:9b")),
            dataset,
        )
        assert [response.result for response in responses] == offline.results
        assert all(response.outcome is RequestOutcome.COMPLETED for response in responses)

    def test_mixed_dataset_batches_route_to_right_strategy(self, service_runner):
        facts = list(service_runner.dataset("factbench"))[:4] + list(
            service_runner.dataset("yago")
        )[:4]
        service = ValidationService.from_runner(
            service_runner, ServiceConfig(enable_cache=False, max_batch_size=8)
        )
        responses = _drive(service, [ServiceRequest(fact, "dka", "gemma2:9b") for fact in facts])
        for fact, response in zip(facts, responses):
            assert response.result.fact_id == fact.fact_id
            assert response.result.gold_label == fact.label


class TestMicroBatching:
    def test_concurrent_requests_coalesce_into_one_batch(self, service_runner):
        facts = list(service_runner.dataset("factbench"))[:8]
        service = ValidationService.from_runner(
            service_runner, ServiceConfig(enable_cache=False, max_batch_size=8)
        )
        responses = _drive(service, [ServiceRequest(fact, "dka", "gemma2:9b") for fact in facts])
        assert [response.batch_size for response in responses] == [8] * 8
        snapshot = service.metrics.snapshot()
        assert snapshot.batches == 1
        assert snapshot.mean_batch_size == pytest.approx(8.0)

    def test_max_batch_size_respected(self, service_runner):
        facts = list(service_runner.dataset("factbench"))[:9]
        service = ValidationService.from_runner(
            service_runner, ServiceConfig(enable_cache=False, max_batch_size=3)
        )
        responses = _drive(service, [ServiceRequest(fact, "dka", "gemma2:9b") for fact in facts])
        assert max(response.batch_size for response in responses) <= 3
        assert service.metrics.snapshot().batches >= 3

    def test_distinct_strategies_get_distinct_workers(self, service_runner):
        facts = list(service_runner.dataset("factbench"))[:4]
        service = ValidationService.from_runner(
            service_runner, ServiceConfig(enable_cache=False, max_batch_size=8)
        )
        requests = [ServiceRequest(fact, "dka", "gemma2:9b") for fact in facts]
        requests += [ServiceRequest(fact, "giv-z", "qwen2.5:7b") for fact in facts]
        responses = _drive(service, requests)
        # Two (method, model) workers -> two batches of four, never merged.
        assert [response.batch_size for response in responses] == [4] * 8
        assert {response.result.method for response in responses} == {"dka", "giv-z"}


class TestBatchLinger:
    def test_single_linger_window_coalesces_late_arrivals(self, service_runner):
        facts = list(service_runner.dataset("factbench"))[:4]
        service = ValidationService.from_runner(
            service_runner,
            ServiceConfig(enable_cache=False, max_batch_size=8, batch_linger_s=0.08),
        )

        async def go():
            async with service:
                first = asyncio.create_task(
                    service.submit(ServiceRequest(facts[0], "dka", "gemma2:9b"))
                )
                await asyncio.sleep(0.01)  # worker is inside its linger window
                rest = [
                    asyncio.create_task(service.submit(ServiceRequest(fact, "dka", "gemma2:9b")))
                    for fact in facts[1:]
                ]
                return await asyncio.gather(first, *rest)

        before = time.perf_counter()
        responses = asyncio.run(go())
        elapsed = time.perf_counter() - before
        # The late arrivals joined the first request's batch...
        assert [response.batch_size for response in responses] == [4] * 4
        # ...and the wait was one linger window, not one window per arrival.
        assert elapsed < 4 * 0.08


class TestAdmissionControl:
    def test_overload_sheds_with_explicit_rejected_outcome(self, service_runner):
        facts = list(service_runner.dataset("factbench"))[:12]
        service = ValidationService.from_runner(
            service_runner,
            ServiceConfig(enable_cache=False, max_batch_size=1, queue_depth=2, time_scale=0.01),
        )
        responses = _drive(service, [ServiceRequest(fact, "dka", "gemma2:9b") for fact in facts])
        rejected = [response for response in responses if response.rejected]
        completed = [response for response in responses if not response.rejected]
        assert len(completed) == 2
        assert len(rejected) == 10
        assert all(response.outcome is RequestOutcome.REJECTED for response in rejected)
        assert all(response.result is None for response in rejected)
        snapshot = service.metrics.snapshot()
        assert snapshot.shed_count == 10
        assert snapshot.completed == 2

    def test_rejection_is_load_shedding_not_an_error(self, service_runner):
        fact = service_runner.dataset("factbench")[0]
        service = ValidationService.from_runner(
            service_runner, ServiceConfig(enable_cache=False, queue_depth=1, time_scale=0.01)
        )

        async def go():
            async with service:
                first, second = await asyncio.gather(
                    service.submit(ServiceRequest(fact, "dka", "gemma2:9b")),
                    service.submit(ServiceRequest(fact, "giv-z", "gemma2:9b")),
                )
                # Once load drains, the service admits again.
                third = await service.submit(ServiceRequest(fact, "giv-z", "gemma2:9b"))
                return first, second, third

        first, second, third = asyncio.run(go())
        assert not first.rejected
        assert second.rejected
        assert not third.rejected


class TestVerdictCacheIntegration:
    def test_repeat_request_is_served_from_cache_with_identical_result(self, service_runner):
        fact = service_runner.dataset("factbench")[0]
        service = ValidationService.from_runner(service_runner, ServiceConfig())

        async def go():
            async with service:
                first = await service.submit(ServiceRequest(fact, "dka", "gemma2:9b"))
                second = await service.submit(ServiceRequest(fact, "dka", "gemma2:9b"))
                other_model = await service.submit(ServiceRequest(fact, "dka", "qwen2.5:7b"))
                return first, second, other_model

        first, second, other_model = asyncio.run(go())
        assert not first.cached and second.cached
        assert second.result == first.result  # exact fields, tokens included
        assert not other_model.cached  # different model must not collide
        stats = service.cache.stats()
        assert stats.hits == 1 and stats.misses == 2
        assert service.metrics.snapshot().cache_hit_rate == pytest.approx(1 / 3)

    def test_shed_requests_do_not_count_as_cache_misses(self, service_runner):
        fact = service_runner.dataset("factbench")[0]
        service = ValidationService.from_runner(
            service_runner, ServiceConfig(queue_depth=1, time_scale=0.01)
        )

        async def go():
            async with service:
                return await asyncio.gather(
                    service.submit(ServiceRequest(fact, "dka", "gemma2:9b")),
                    service.submit(ServiceRequest(fact, "giv-z", "gemma2:9b")),
                )

        first, second = asyncio.run(go())
        assert not first.rejected and second.rejected
        # Only the admitted request registers a miss; the shed one must not
        # deflate the served-traffic hit rate.
        stats = service.cache.stats()
        assert (stats.hits, stats.misses) == (0, 1)
        snapshot = service.metrics.snapshot()
        assert (snapshot.cache_hits, snapshot.cache_misses) == (0, 1)

    def test_cache_disabled_never_marks_cached(self, service_runner):
        fact = service_runner.dataset("factbench")[0]
        service = ValidationService.from_runner(
            service_runner, ServiceConfig(enable_cache=False)
        )
        responses = _drive(service, [ServiceRequest(fact, "dka", "gemma2:9b")] * 3)
        assert service.cache is None
        assert all(not response.cached for response in responses)


class TestLifecycleAndFailure:
    def test_submit_after_stop_raises(self, service_runner):
        fact = service_runner.dataset("factbench")[0]
        service = ValidationService.from_runner(service_runner, ServiceConfig())

        async def go():
            async with service:
                await service.submit(ServiceRequest(fact, "dka", "gemma2:9b"))
            with pytest.raises(RuntimeError):
                await service.submit(ServiceRequest(fact, "dka", "gemma2:9b"))

        asyncio.run(go())

    def test_stop_drains_inflight_requests_before_cancelling_workers(self, service_runner):
        facts = list(service_runner.dataset("factbench"))[:4]
        service = ValidationService.from_runner(
            service_runner,
            ServiceConfig(enable_cache=False, max_batch_size=1, time_scale=0.05),
        )

        async def go():
            await service.start()
            tasks = [
                asyncio.create_task(service.submit(ServiceRequest(fact, "dka", "gemma2:9b")))
                for fact in facts
            ]
            await asyncio.sleep(0.01)  # first batch mid-sleep, rest still queued
            await asyncio.wait_for(service.stop(), timeout=5.0)
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)
            # Every accepted request gets a real response: nothing queued or
            # mid-batch is dropped by a graceful shutdown.
            assert all(isinstance(outcome, ServiceResponse) for outcome in outcomes)
            assert all(outcome.outcome is RequestOutcome.COMPLETED for outcome in outcomes)
            assert service.metrics.snapshot().completed == len(facts)

        asyncio.run(go())

    def test_stop_without_drain_cancels_inflight_requests(self, service_runner):
        facts = list(service_runner.dataset("factbench"))[:4]
        service = ValidationService.from_runner(
            service_runner,
            ServiceConfig(enable_cache=False, max_batch_size=1, time_scale=0.05),
        )

        async def go():
            await service.start()
            tasks = [
                asyncio.create_task(service.submit(ServiceRequest(fact, "dka", "gemma2:9b")))
                for fact in facts
            ]
            await asyncio.sleep(0.01)  # first batch mid-sleep, rest still queued
            await asyncio.wait_for(service.stop(drain=False), timeout=2.0)
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)
            assert all(isinstance(outcome, asyncio.CancelledError) for outcome in outcomes)

        asyncio.run(go())

    def test_strategy_failure_propagates_and_worker_survives(self, service_runner):
        fact = service_runner.dataset("factbench")[0]
        calls = {"count": 0}

        def flaky_provider(method, dataset, model):
            calls["count"] += 1
            if calls["count"] == 1:
                raise KeyError("no such strategy")
            return service_runner.build_strategy(method, dataset, service_runner.registry.get(model))

        service = ValidationService(flaky_provider, ServiceConfig(enable_cache=False))

        async def go():
            async with service:
                with pytest.raises(KeyError):
                    await service.submit(ServiceRequest(fact, "dka", "gemma2:9b"))
                # The worker keeps serving after a failed batch.
                return await service.submit(ServiceRequest(fact, "dka", "gemma2:9b"))

        response = asyncio.run(go())
        assert response.outcome is RequestOutcome.COMPLETED
        # The failed batch is accounted as an error, keeping
        # completed + rejected + errors == submitted.
        snapshot = service.metrics.snapshot()
        assert snapshot.errors == 1
        assert snapshot.completed == 1

    def test_group_failure_does_not_fail_cobatched_datasets(self, service_runner):
        factbench_fact = service_runner.dataset("factbench")[0]
        yago_fact = service_runner.dataset("yago")[0]

        def provider(method, dataset, model):
            if dataset == "yago":
                raise KeyError("yago substrate unavailable")
            return service_runner.build_strategy(method, dataset, service_runner.registry.get(model))

        service = ValidationService(provider, ServiceConfig(enable_cache=False, max_batch_size=8))

        async def go():
            async with service:
                return await asyncio.gather(
                    service.submit(ServiceRequest(factbench_fact, "dka", "gemma2:9b")),
                    service.submit(ServiceRequest(yago_fact, "dka", "gemma2:9b")),
                    return_exceptions=True,
                )

        ok, failed = asyncio.run(go())
        # Both rode the same (dka, gemma2:9b) micro-batch; only the yago
        # group's failure surfaces, the factbench request still completes.
        assert ok.outcome is RequestOutcome.COMPLETED and ok.batch_size == 2
        assert isinstance(failed, KeyError)


class TestMetrics:
    def test_percentile_interpolates(self):
        # Linear interpolation between closest ranks (the registry is the
        # single percentile implementation since the observability PR).
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == 50.5
        assert percentile(values, 95) == 95.05
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 100.0
        assert percentile([], 95) == 0.0
        assert percentile([7.0], 99) == 7.0
        # Short windows interpolate instead of snapping to one sample.
        assert percentile([1.0, 2.0], 50) == 1.5
        assert percentile([1.0, 3.0], 25) == 1.5
        with pytest.raises(ValueError):
            percentile(values, 101)
        with pytest.raises(ValueError):
            percentile(values, -1)

    def test_snapshot_shape_and_telemetry_wiring(self, service_runner):
        facts = list(service_runner.dataset("factbench"))[:6]
        telemetry = service_runner.telemetry
        before = len(telemetry.records(task="serve/dka"))
        service = ValidationService.from_runner(service_runner, ServiceConfig(enable_cache=False))
        _drive(service, [ServiceRequest(fact, "dka", "gemma2:9b") for fact in facts])
        snapshot = service.metrics.snapshot()
        assert isinstance(snapshot, MetricsSnapshot)
        assert snapshot.completed == 6
        assert snapshot.throughput_rps > 0
        assert 0 < snapshot.p50_latency_s <= snapshot.p95_latency_s <= snapshot.p99_latency_s
        assert "p95" in snapshot.format_table()
        # Serving records land in the shared TelemetryCollector by task label.
        serve_records = telemetry.records(task="serve/dka")
        assert len(serve_records) - before == 6
        assert all(record.model == "gemma2:9b" for record in serve_records[-6:])

    def test_restart_resets_the_measurement_window(self, service_runner):
        facts = list(service_runner.dataset("factbench"))[:5]
        service = ValidationService.from_runner(service_runner, ServiceConfig(enable_cache=False))
        _drive(service, [ServiceRequest(fact, "dka", "gemma2:9b") for fact in facts])
        assert service.metrics.snapshot().completed == 5
        # A second serving window must not divide the old completion count
        # by the new elapsed time.
        _drive(service, [ServiceRequest(fact, "dka", "gemma2:9b") for fact in facts[:2]])
        snapshot = service.metrics.snapshot()
        assert snapshot.completed == 2
        assert snapshot.batches >= 1


class TestLoadGenerator:
    def test_closed_loop_run_completes_workload(self, service_runner):
        datasets = [service_runner.dataset("factbench"), service_runner.dataset("yago")]
        workload = build_workload(
            datasets, ["dka", "giv-z"], ["gemma2:9b", "qwen2.5:7b"], 80, seed=5
        )
        service = ValidationService.from_runner(service_runner, ServiceConfig(time_scale=0.001))
        report = LoadGenerator(service, workload, concurrency=8).run_sync()
        assert report.total == 80
        assert report.completed == 80
        assert report.rejected == 0
        assert report.throughput_rps > 0
        assert report.cache_hits > 0  # the mix repeats facts by design
        assert "p95 latency" in report.format_table()
        verdicts = report.verdicts()
        assert verdicts  # (method, model, dataset, fact_id) -> verdict
        assert all(len(key) == 4 for key in verdicts)

    def test_workload_is_deterministic_per_seed(self, service_runner):
        datasets = [service_runner.dataset("factbench")]
        first = build_workload(datasets, ["dka"], ["gemma2:9b"], 30, seed=9)
        second = build_workload(datasets, ["dka"], ["gemma2:9b"], 30, seed=9)
        different = build_workload(datasets, ["dka"], ["gemma2:9b"], 30, seed=10)
        assert [(r.fact.fact_id, r.method, r.model) for r in first] == [
            (r.fact.fact_id, r.method, r.model) for r in second
        ]
        assert [(r.fact.fact_id, r.method, r.model) for r in first] != [
            (r.fact.fact_id, r.method, r.model) for r in different
        ]

    def test_method_weights_shape_the_mix(self, service_runner):
        datasets = [service_runner.dataset("factbench")]
        workload = build_workload(
            datasets, ["dka", "giv-z"], ["gemma2:9b"], 200, seed=1,
            method_weights={"dka": 9.0, "giv-z": 1.0},
        )
        dka_share = sum(1 for request in workload if request.method == "dka") / len(workload)
        assert dka_share > 0.75

    def test_invalid_specs_rejected(self, service_runner):
        datasets = [service_runner.dataset("factbench")]
        with pytest.raises(ValueError):
            build_workload([], ["dka"], ["gemma2:9b"], 10)
        with pytest.raises(ValueError):
            build_workload(datasets, ["dka"], ["gemma2:9b"], -1)
        with pytest.raises(ValueError):
            build_workload(datasets, ["dka"], ["gemma2:9b"], 10, method_weights={"dka": 0.0})


class TestTCPFrontend:
    def test_round_trip_metrics_and_errors(self, service_runner):
        dataset = service_runner.dataset("factbench")

        async def go():
            service = ValidationService.from_runner(service_runner, ServiceConfig())
            async with service:
                async with TCPValidationFrontend(service, {"factbench": dataset}) as frontend:
                    assert frontend.port != 0
                    reader, writer = await asyncio.open_connection("127.0.0.1", frontend.port)

                    async def ask(payload):
                        writer.write(json.dumps(payload).encode() + b"\n")
                        await writer.drain()
                        return json.loads(await reader.readline())

                    good = await ask(
                        {"dataset": "factbench", "fact_id": dataset[0].fact_id,
                         "method": "dka", "model": "gemma2:9b", "id": "req-1"}
                    )
                    repeat = await ask(
                        {"dataset": "factbench", "fact_id": dataset[0].fact_id,
                         "method": "dka", "model": "gemma2:9b"}
                    )
                    missing = await ask({"dataset": "factbench", "fact_id": "nope"})
                    bad_dataset = await ask({"dataset": "unknown", "fact_id": "x"})
                    metrics = await ask({"cmd": "metrics"})
                    malformed_reply = None
                    writer.write(b"this is not json\n")
                    await writer.drain()
                    malformed_reply = json.loads(await reader.readline())
                    writer.close()
                    await writer.wait_closed()
                    # Error replies count toward requests_handled (so a
                    # --max-requests bound terminates even on bad input);
                    # control commands like metrics do not.
                    assert frontend.requests_handled == 5
                    return good, repeat, missing, bad_dataset, metrics, malformed_reply

        good, repeat, missing, bad_dataset, metrics, malformed = asyncio.run(go())
        assert good["outcome"] == "completed"
        assert good["id"] == "req-1"
        assert good["verdict"] in {"true", "false", "invalid", "tie"}
        assert repeat["cached"] is True
        assert repeat["verdict"] == good["verdict"]
        assert missing["outcome"] == "error" and "unknown fact_id" in missing["error"]
        assert bad_dataset["outcome"] == "error" and "unknown dataset" in bad_dataset["error"]
        assert metrics["completed"] == 2
        assert malformed["outcome"] == "error"

    def test_allowed_method_model_restrictions_enforced(self, service_runner):
        dataset = service_runner.dataset("factbench")

        async def go():
            service = ValidationService.from_runner(service_runner, ServiceConfig())
            async with service:
                frontend = TCPValidationFrontend(
                    service, {"factbench": dataset},
                    allowed_methods=("dka",), allowed_models=("gemma2:9b",),
                )
                async with frontend:
                    reader, writer = await asyncio.open_connection("127.0.0.1", frontend.port)

                    async def ask(payload):
                        writer.write(json.dumps(payload).encode() + b"\n")
                        await writer.drain()
                        return json.loads(await reader.readline())

                    ok = await ask({"dataset": "factbench", "fact_id": dataset[0].fact_id,
                                    "method": "dka", "model": "gemma2:9b"})
                    bad_method = await ask({"dataset": "factbench", "fact_id": dataset[0].fact_id,
                                            "method": "rag", "model": "gemma2:9b"})
                    bad_model = await ask({"dataset": "factbench", "fact_id": dataset[0].fact_id,
                                           "method": "dka", "model": "qwen2.5:7b"})
                    writer.close()
                    await writer.wait_closed()
                    return ok, bad_method, bad_model

        ok, bad_method, bad_model = asyncio.run(go())
        assert ok["outcome"] == "completed"
        assert bad_method["outcome"] == "error" and "not served" in bad_method["error"]
        assert bad_model["outcome"] == "error" and "not served" in bad_model["error"]

    def test_empty_allowlist_denies_all_instead_of_unrestricting(self, service_runner):
        dataset = service_runner.dataset("factbench")
        frontend = TCPValidationFrontend(
            ValidationService.from_runner(service_runner, ServiceConfig()),
            {"factbench": dataset},
            allowed_methods=[],
        )
        assert frontend.allowed_methods == frozenset()
        assert frontend.allowed_models is None

    def test_mid_request_disconnect_does_not_kill_the_accept_loop(self, service_runner):
        dataset = service_runner.dataset("factbench")

        async def go():
            service = ValidationService.from_runner(service_runner, ServiceConfig())
            async with service:
                async with TCPValidationFrontend(service, {"factbench": dataset}) as frontend:
                    # Client 1 vanishes mid-request: a partial line with no
                    # newline, then an abortive close (RST via SO_LINGER 0
                    # where supported; plain close otherwise).
                    reader, writer = await asyncio.open_connection("127.0.0.1", frontend.port)
                    writer.write(b'{"dataset": "factbench", "fact_id": ')
                    await writer.drain()
                    sock = writer.get_extra_info("socket")
                    if sock is not None:
                        import socket as socket_module
                        import struct

                        sock.setsockopt(
                            socket_module.SOL_SOCKET,
                            socket_module.SO_LINGER,
                            struct.pack("ii", 1, 0),
                        )
                    writer.close()

                    # Client 2 disconnects right after a full request, before
                    # reading the reply (the server's write/drain may fail).
                    reader2, writer2 = await asyncio.open_connection(
                        "127.0.0.1", frontend.port
                    )
                    writer2.write(
                        json.dumps(
                            {"dataset": "factbench", "fact_id": dataset[0].fact_id,
                             "method": "dka", "model": "gemma2:9b"}
                        ).encode() + b"\n"
                    )
                    await writer2.drain()
                    writer2.close()

                    await asyncio.sleep(0.05)  # let both handlers run their course

                    # The accept loop survived both: a fresh connection is
                    # served normally.
                    reader3, writer3 = await asyncio.open_connection(
                        "127.0.0.1", frontend.port
                    )
                    writer3.write(
                        json.dumps(
                            {"dataset": "factbench", "fact_id": dataset[0].fact_id,
                             "method": "dka", "model": "gemma2:9b"}
                        ).encode() + b"\n"
                    )
                    await writer3.drain()
                    reply = json.loads(await reader3.readline())
                    writer3.close()
                    await writer3.wait_closed()
                    return reply

        reply = asyncio.run(go())
        assert reply["outcome"] == "completed"

    def test_truncated_json_line_gets_structured_error_reply(self, service_runner):
        dataset = service_runner.dataset("factbench")

        async def go():
            service = ValidationService.from_runner(service_runner, ServiceConfig())
            async with service:
                async with TCPValidationFrontend(service, {"factbench": dataset}) as frontend:
                    reader, writer = await asyncio.open_connection("127.0.0.1", frontend.port)
                    # A line that ends mid-object: terminated, but truncated.
                    writer.write(b'{"dataset": "factbench", "fact_id"\n')
                    await writer.drain()
                    truncated = json.loads(await reader.readline())
                    # The connection stays usable for well-formed follow-ups.
                    writer.write(
                        json.dumps(
                            {"dataset": "factbench", "fact_id": dataset[0].fact_id,
                             "method": "dka", "model": "gemma2:9b"}
                        ).encode() + b"\n"
                    )
                    await writer.drain()
                    follow_up = json.loads(await reader.readline())
                    # EOF mid-line (no trailing newline at close): the server
                    # answers with a structured error, never dies silently.
                    writer.write(b'{"dataset": "fact')
                    await writer.drain()
                    writer.write_eof()
                    trailing = json.loads(await reader.readline())
                    writer.close()
                    await writer.wait_closed()
                    assert frontend.requests_handled == 3
                    return truncated, follow_up, trailing

        truncated, follow_up, trailing = asyncio.run(go())
        assert truncated["outcome"] == "error" and "malformed JSON" in truncated["error"]
        assert follow_up["outcome"] == "completed"
        assert trailing["outcome"] == "error" and "malformed JSON" in trailing["error"]

    def test_oversized_line_gets_error_reply_not_a_dead_handler(self, service_runner):
        dataset = service_runner.dataset("factbench")

        async def go():
            service = ValidationService.from_runner(service_runner, ServiceConfig())
            async with service:
                async with TCPValidationFrontend(service, {"factbench": dataset}) as frontend:
                    reader, writer = await asyncio.open_connection("127.0.0.1", frontend.port)
                    writer.write(b'{"pad": "' + b"x" * 200_000 + b'"}\n')
                    await writer.drain()
                    reply = json.loads(await reader.readline())
                    # The stream cannot be resynchronised; the server closes
                    # the connection after the error reply (plain EOF, or a
                    # reset when our oversized line is still unread).
                    try:
                        trailing = await reader.readline()
                    except ConnectionResetError:
                        trailing = b""
                    assert trailing == b""
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionError, OSError):
                        pass
                    return reply

        reply = asyncio.run(go())
        assert reply["outcome"] == "error" and "too long" in reply["error"]
