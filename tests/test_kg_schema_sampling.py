"""Tests for the ontology layer and negative sampling."""

import pytest

from repro.kg import CorruptionStrategy, NegativeSampler, Triple, default_ontology
from repro.worldmodel import EntityType


class TestOntology:
    def test_domain_and_range(self):
        ontology = default_ontology()
        assert ontology.domain_of("birthPlace") is EntityType.PERSON
        assert ontology.range_of("birthPlace") is EntityType.CITY
        assert ontology.domain_of("unknownPredicate") is None

    def test_abox_vs_tbox(self):
        ontology = default_ontology()
        assert ontology.is_abox("spouse")
        assert ontology.is_tbox("rdfs:subClassOf")
        assert not ontology.is_abox("rdfs:subClassOf")

    def test_validate_conformant_triple(self):
        ontology = default_ontology()
        triple = Triple("Alice", "birthPlace", "Springfield")
        assert ontology.validate_triple(triple, EntityType.PERSON, EntityType.CITY) == []

    def test_validate_domain_violation(self):
        ontology = default_ontology()
        triple = Triple("Springfield", "birthPlace", "Springfield")
        violations = ontology.validate_triple(triple, EntityType.CITY, EntityType.CITY)
        assert any(v.constraint == "domain" for v in violations)

    def test_validate_range_violation(self):
        ontology = default_ontology()
        triple = Triple("Alice", "birthPlace", "Bob")
        violations = ontology.validate_triple(triple, EntityType.PERSON, EntityType.PERSON)
        assert any(v.constraint == "range" for v in violations)

    def test_validate_unknown_predicate(self):
        ontology = default_ontology()
        triple = Triple("Alice", "someRandomProperty", "Bob")
        violations = ontology.validate_triple(triple, None, None)
        assert [v.constraint for v in violations] == ["unknown-predicate"]

    def test_untyped_entities_are_lenient(self):
        ontology = default_ontology()
        triple = Triple("Alice", "birthPlace", "Springfield")
        assert ontology.validate_triple(triple, None, None) == []

    def test_functionality_check(self):
        ontology = default_ontology()
        violation = ontology.check_functionality("capital", ["OldCapital"], "NewCapital")
        assert violation is not None and violation.constraint == "functional"
        assert ontology.check_functionality("starring", ["A"], "B") is None
        assert ontology.check_functionality("capital", [], "NewCapital") is None

    def test_predicates_with_signature(self):
        ontology = default_ontology()
        person_to_city = ontology.predicates_with_signature(
            domain=EntityType.PERSON, range_=EntityType.CITY
        )
        assert "birthPlace" in person_to_city and "deathPlace" in person_to_city
        assert "capital" not in person_to_city


class TestNegativeSampler:
    @pytest.fixture(scope="class")
    def sampler(self, world):
        return NegativeSampler(world, seed=9)

    @pytest.fixture(scope="class")
    def sample_facts(self, world):
        return world.facts.facts_for_predicate("birthPlace")[:30]

    def test_corrupted_facts_are_false(self, world, sampler, sample_facts):
        for fact in sample_facts[:10]:
            corrupted = sampler.corrupt(fact)
            assert corrupted is not None
            assert not world.is_true(corrupted.subject, corrupted.predicate, corrupted.object)

    def test_object_range_strategy_keeps_type(self, world, sampler, sample_facts):
        corrupted = sampler.corrupt(sample_facts[0], CorruptionStrategy.OBJECT_RANGE)
        assert corrupted is not None
        original_type = world.entity(sample_facts[0].object).etype
        assert world.entity(corrupted.object).etype == original_type
        assert corrupted.subject == sample_facts[0].subject

    def test_subject_domain_strategy_keeps_type(self, world, sampler, sample_facts):
        corrupted = sampler.corrupt(sample_facts[0], CorruptionStrategy.SUBJECT_DOMAIN)
        assert corrupted is not None
        original_type = world.entity(sample_facts[0].subject).etype
        assert world.entity(corrupted.subject).etype == original_type
        assert corrupted.object == sample_facts[0].object

    def test_predicate_swap_respects_signature(self, world, sampler, sample_facts):
        corrupted = None
        for fact in sample_facts:
            corrupted = sampler.corrupt(fact, CorruptionStrategy.PREDICATE_SWAP)
            if corrupted is not None:
                break
        assert corrupted is not None
        # birthPlace (Person -> City) can only swap to deathPlace.
        assert corrupted.predicate == "deathPlace"

    def test_corrupt_many_count_and_provenance(self, world, sampler, sample_facts):
        negatives = sampler.corrupt_many(sample_facts, 20)
        assert len(negatives) == 20
        for negative in negatives:
            assert negative.source in sample_facts
            assert not world.is_true(negative.subject, negative.predicate, negative.object)

    def test_corrupt_many_empty_input(self, sampler):
        assert sampler.corrupt_many([], 5) == []

    def test_corrupt_many_respects_strategy_restriction(self, world, sampler, sample_facts):
        negatives = sampler.corrupt_many(
            sample_facts, 15, strategies=[CorruptionStrategy.OBJECT_RANGE]
        )
        assert negatives
        assert all(n.strategy is CorruptionStrategy.OBJECT_RANGE for n in negatives)

    def test_deterministic_given_seed(self, world, sample_facts):
        first = NegativeSampler(world, seed=3).corrupt_many(sample_facts, 10)
        second = NegativeSampler(world, seed=3).corrupt_many(sample_facts, 10)
        assert [n.as_fact() for n in first] == [n.as_fact() for n in second]
