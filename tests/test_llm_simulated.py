"""Tests for the world-grounded simulated LLM."""

import pytest

from repro.llm import SimulatedLLM, create_model, get_profile
from repro.validation.prompts import parse_questions, parse_verdict


@pytest.fixture(scope="module")
def sample_facts(factbench_small):
    positives = [fact for fact in factbench_small if fact.label][:10]
    negatives = [fact for fact in factbench_small if not fact.label][:10]
    return positives, negatives


class TestDeterminism:
    def test_same_prompt_same_fact_same_response(self, world, factbench_small):
        model_a = create_model("gemma2:9b", world, seed=1)
        model_b = create_model("gemma2:9b", world, seed=1)
        fact = factbench_small[0]
        meta = {"task": "verify", "fact": fact, "method": "dka"}
        response_a = model_a.generate("prompt", metadata=meta)
        response_b = model_b.generate("prompt", metadata=meta)
        assert response_a.text == response_b.text
        assert response_a.latency_seconds == response_b.latency_seconds

    def test_different_models_differ_somewhere(self, world, factbench_small):
        gemma = create_model("gemma2:9b", world, seed=1)
        mistral = create_model("mistral:7b", world, seed=1)
        differing = 0
        for fact in factbench_small.facts()[:30]:
            meta = {"task": "verify", "fact": fact, "method": "dka"}
            if gemma.generate("p", metadata=meta).text != mistral.generate("p", metadata=meta).text:
                differing += 1
        assert differing > 0


class TestVerification:
    def test_responses_parse_to_verdicts(self, gemma, factbench_small):
        parsed = 0
        for fact in factbench_small.facts()[:40]:
            response = gemma.generate(
                "p", metadata={"task": "verify", "fact": fact, "method": "dka"}
            )
            if parse_verdict(response.text) is not None:
                parsed += 1
        # format_compliance is ~0.97, so nearly all responses must parse.
        assert parsed >= 35

    def test_structured_mode_emits_json(self, gemma, factbench_small):
        fact = factbench_small[0]
        response = gemma.generate(
            "p",
            metadata={"task": "verify", "fact": fact, "method": "giv-f",
                      "structured": True, "few_shot": True},
        )
        if parse_verdict(response.text) is not None:
            assert '"verdict"' in response.text

    def test_accuracy_better_than_chance_on_popular_facts(self, gemma, factbench_small):
        correct = 0
        total = 0
        for fact in factbench_small:
            if fact.popularity < 0.5:
                continue
            response = gemma.generate(
                "p", metadata={"task": "verify", "fact": fact, "method": "dka"}
            )
            verdict = parse_verdict(response.text)
            if verdict is None:
                continue
            total += 1
            correct += int(verdict == fact.label)
        if total >= 5:
            assert correct / total > 0.5

    def test_supporting_evidence_pushes_toward_true(self, world, factbench_small):
        gemma = create_model("gemma2:9b", world, seed=2)
        positives = [fact for fact in factbench_small if fact.label][:20]
        agree = 0
        answered = 0
        for fact in positives:
            evidence = [f"{fact.subject_name} is documented together with {fact.object_name}."]
            response = gemma.generate(
                "p",
                metadata={"task": "verify", "fact": fact, "method": "rag",
                          "evidence": evidence, "structured": True},
            )
            verdict = parse_verdict(response.text)
            if verdict is None:
                continue
            answered += 1
            agree += int(verdict is True)
        assert answered > 0
        assert agree / answered > 0.8

    def test_refuting_evidence_pushes_toward_false(self, world, factbench_small):
        gemma = create_model("gemma2:9b", world, seed=2)
        negatives = [
            fact for fact in factbench_small
            if not fact.label and fact.negative_strategy == "object-range"
        ][:20]
        said_false = 0
        answered = 0
        for fact in negatives:
            subject = world.entity_by_name(fact.subject_name)
            if subject is None:
                continue
            true_objects = world.true_objects(subject.entity_id, fact.base_predicate())
            if not true_objects:
                continue
            alternative = world.name(true_objects[0])
            evidence = [f"{fact.subject_name} is associated with {alternative} in every record."]
            response = gemma.generate(
                "p",
                metadata={"task": "verify", "fact": fact, "method": "rag",
                          "evidence": evidence, "structured": True},
            )
            verdict = parse_verdict(response.text)
            if verdict is None:
                continue
            answered += 1
            said_false += int(verdict is False)
        if answered >= 5:
            assert said_false / answered > 0.6

    def test_commercial_model_sceptical_without_evidence(self, world, factbench_small):
        gpt = create_model("gpt-4o-mini", world, seed=2)
        positives = [fact for fact in factbench_small if fact.label]
        said_true = 0
        answered = 0
        for fact in positives:
            response = gpt.generate(
                "p", metadata={"task": "verify", "fact": fact, "method": "dka"}
            )
            verdict = parse_verdict(response.text)
            if verdict is None:
                continue
            answered += 1
            said_true += int(verdict is True)
        # The conservative commercial profile endorses far fewer true facts.
        assert answered > 0
        assert said_true / answered < 0.75

    def test_reprompt_attempt_improves_compliance(self, world, factbench_small):
        llama = create_model("llama3.1:8b", world, seed=5)
        fact = factbench_small[1]
        non_compliant_first = 0
        compliant_second = 0
        for fact in factbench_small.facts()[:40]:
            first = llama.generate(
                "p", metadata={"task": "verify", "fact": fact, "method": "giv-z",
                               "structured": True, "attempt": 0},
            )
            if parse_verdict(first.text) is None:
                non_compliant_first += 1
                second = llama.generate(
                    "p", metadata={"task": "verify", "fact": fact, "method": "giv-z",
                                   "structured": True, "attempt": 1},
                )
                compliant_second += int(parse_verdict(second.text) is not None)
        if non_compliant_first:
            assert compliant_second >= 0  # retries never crash; usually recover


class TestAuxiliaryTasks:
    def test_transform_produces_sentence(self, gemma, factbench_small):
        fact = factbench_small[0]
        response = gemma.generate("p", metadata={"task": "transform", "fact": fact})
        assert fact.subject_name in response.text
        assert response.text.strip().endswith((".", "?"))

    def test_question_generation_yields_parseable_questions(self, gemma, factbench_small):
        fact = factbench_small[0]
        response = gemma.generate(
            "p", metadata={"task": "generate_questions", "fact": fact, "num_questions": 10}
        )
        questions = parse_questions(response.text)
        assert 2 <= len(questions) <= 10
        assert any(fact.subject_name in question for question in questions)

    def test_error_explanation_mentions_entities(self, gemma, factbench_small):
        fact = factbench_small[0]
        response = gemma.generate(
            "p", metadata={"task": "explain_error", "fact": fact, "had_evidence": False}
        )
        assert fact.subject_name in response.text

    def test_error_explanation_missing_context(self, gemma, factbench_small):
        fact = factbench_small[0]
        response = gemma.generate(
            "p",
            metadata={"task": "explain_error", "fact": fact,
                      "had_evidence": True, "evidence_useful": False},
        )
        assert "context" in response.text.lower()

    def test_generic_task(self, gemma):
        response = gemma.generate("Summarize the weather.")
        assert response.text


class TestAccounting:
    def test_token_counts_reflect_prompt_length(self, gemma, factbench_small):
        fact = factbench_small[0]
        short = gemma.generate("short", metadata={"task": "verify", "fact": fact, "method": "dka"})
        long = gemma.generate("long " * 300, metadata={"task": "verify", "fact": fact, "method": "dka"})
        assert long.prompt_tokens > short.prompt_tokens
        assert long.latency_seconds > short.latency_seconds

    def test_latency_positive(self, gemma, factbench_small):
        fact = factbench_small[0]
        response = gemma.generate("p", metadata={"task": "verify", "fact": fact, "method": "dka"})
        assert response.latency_seconds > 0
        assert response.total_tokens == response.prompt_tokens + response.completion_tokens
