"""Tests for N-Triples import/export of knowledge graphs."""

import pytest

from repro.kg import (
    KnowledgeGraph,
    Triple,
    load_ntriples,
    parse_triple_line,
    save_ntriples,
    serialize_triple,
)


class TestSerialization:
    def test_iri_terms_bracketed(self):
        triple = Triple(
            "http://dbpedia.org/resource/Marie_Curie",
            "http://dbpedia.org/ontology/birthPlace",
            "http://dbpedia.org/resource/Warsaw",
        )
        line = serialize_triple(triple)
        assert line.startswith("<http://dbpedia.org/resource/Marie_Curie>")
        assert line.endswith(" .")

    def test_plain_terms_become_literals(self):
        line = serialize_triple(Triple("Marie Curie", "birthPlace", "Warsaw Town"))
        assert '"Marie Curie"' in line and '"Warsaw Town"' in line

    def test_quotes_escaped(self):
        line = serialize_triple(Triple('The "Quoted" Name', "p", "o"))
        restored = parse_triple_line(line)
        assert restored.subject == 'The "Quoted" Name'

    def test_roundtrip_mixed_encodings(self):
        triples = [
            Triple("http://dbpedia.org/resource/A", "http://dbpedia.org/ontology/p", "Literal value"),
            Triple("<Albert_Einstein>", "<wasBornIn>", "<Ulm>"),
            Triple("plain subject", "plainPredicate", "plain object"),
        ]
        for triple in triples:
            assert parse_triple_line(serialize_triple(triple)) == triple

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_triple_line('"only" "two terms" .')
        with pytest.raises(ValueError):
            parse_triple_line('"a" "b" "c"')  # missing terminal dot


class TestFileRoundTrip:
    def test_save_and_load_graph(self, tmp_path):
        graph = KnowledgeGraph("original")
        graph.add_all(
            [
                Triple("alice", "spouse", "bob"),
                Triple("alice", "birthPlace", "springfield"),
                Triple("http://dbpedia.org/resource/X", "http://dbpedia.org/ontology/p", "y"),
            ]
        )
        path = save_ntriples(graph, tmp_path / "graph.nt")
        loaded = load_ntriples(path, name="copy")
        assert len(loaded) == len(graph)
        assert set(loaded) == set(graph)
        assert loaded.name == "copy"

    def test_load_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "graph.nt"
        path.write_text(
            '# a comment line\n\n"alice" "spouse" "bob" .\n', encoding="utf-8"
        )
        graph = load_ntriples(path)
        assert len(graph) == 1

    def test_load_reports_line_number_on_error(self, tmp_path):
        path = tmp_path / "bad.nt"
        path.write_text('"alice" "spouse" "bob" .\nnot a triple\n', encoding="utf-8")
        with pytest.raises(ValueError) as excinfo:
            load_ntriples(path)
        assert ":2:" in str(excinfo.value)

    def test_save_reference_graph_sample(self, tmp_path, world):
        from repro.baselines import build_reference_graph

        graph = build_reference_graph(world)
        sample = list(graph)[:50]
        path = save_ntriples(sample, tmp_path / "sample.nt")
        loaded = load_ntriples(path)
        assert len(loaded) == len(set(sample))
