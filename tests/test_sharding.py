"""Sharded store + scatter-gather router: routing, epochs, merge determinism."""

from __future__ import annotations

import asyncio

import pytest

from repro.benchmark import BenchmarkRunner, ExperimentConfig
from repro.kg import Triple
from repro.retrieval.corpus import Document
from repro.service import (
    LoadGenerator,
    RequestOutcome,
    ServiceConfig,
    ServiceRequest,
    ShardedValidationService,
    TCPValidationFrontend,
    ValidationService,
    build_mixed_workload,
)
from repro.store import (
    HashRing,
    Mutation,
    ShardedStore,
    VersionedKnowledgeStore,
    mutation_shard_key,
)


@pytest.fixture(scope="module")
def shard_runner():
    return BenchmarkRunner(
        ExperimentConfig(
            scale=0.03,
            max_facts_per_dataset=16,
            world_scale=0.15,
            methods=("dka", "giv-z"),
            datasets=("factbench",),
            models=("gemma2:9b",),
            include_commercial_in_grid=False,
            seed=11,
        )
    )


def _triples(count: int):
    return [
        Triple(f"entity{i % 40}", f"pred{i % 6}", f"entity{(i + 7) % 40}")
        for i in range(count)
    ]


def _documents(count: int, prefix: str = "doc"):
    return [
        Document(
            doc_id=f"{prefix}{i}",
            url=f"https://corpus.example/{prefix}{i}",
            title=f"entity{i % 40} notes",
            text=f"entity{i % 40} relates to entity{(i + 7) % 40} via pred{i % 6}.",
            source="corpus.example",
            fact_id=f"fact-{i % 25}" if i % 3 else "",
        )
        for i in range(count)
    ]


class TestHashRing:
    def test_deterministic_and_in_range(self):
        ring = HashRing(5)
        keys = [f"entity{i}" for i in range(500)]
        first = [ring.shard_for(key) for key in keys]
        second = [HashRing(5).shard_for(key) for key in keys]
        assert first == second
        assert set(first) <= set(range(5))
        # Every shard owns a non-trivial slice of a 500-key space.
        for shard in range(5):
            assert first.count(shard) > 0

    def test_single_shard_owns_everything(self):
        ring = HashRing(1)
        assert {ring.shard_for(f"k{i}") for i in range(50)} == {0}

    def test_growing_the_ring_remaps_only_a_fraction(self):
        keys = [f"entity{i}" for i in range(2000)]
        four, five = HashRing(4), HashRing(5)
        moved = sum(1 for key in keys if four.shard_for(key) != five.shard_for(key))
        # Consistent hashing: ~1/5 of keys move to the new shard; a modulo
        # partition would remap ~4/5.  Allow slack for ring granularity.
        assert moved / len(keys) < 0.5
        # ...and the keys that moved, moved *to* the new shard mostly.
        gained = sum(
            1 for key in keys
            if four.shard_for(key) != five.shard_for(key) and five.shard_for(key) == 4
        )
        assert gained / max(1, moved) > 0.8

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, replicas=0)


class TestMutationRouting:
    def test_triples_route_by_subject(self):
        mutation = Mutation.add_triple("Alice_Smith", "worksFor", "Acme_Corp")
        assert mutation_shard_key(mutation) == "Alice_Smith"
        removal = Mutation.remove_triple("Alice_Smith", "worksFor", "Acme_Corp")
        assert mutation_shard_key(removal) == "Alice_Smith"

    def test_documents_route_by_fact_then_doc_id(self):
        with_fact = Mutation.add_document(
            Document(doc_id="d1", url="u", title="t", text="x", source="s", fact_id="fb-1")
        )
        assert mutation_shard_key(with_fact) == "fb-1"
        without_fact = Mutation.add_document(
            Document(doc_id="d2", url="u", title="t", text="x", source="s")
        )
        assert mutation_shard_key(without_fact) == "d2"


class TestShardedStore:
    def test_partition_covers_everything_exactly_once(self):
        triples, documents = _triples(120), _documents(60)
        store = ShardedStore.partition(triples, documents, num_shards=3)
        assert store.total_triples == len(set(triples))
        assert store.total_documents == len(documents)
        for triple in set(triples):
            owner = store.shard_for(triple.subject)
            for index, shard in enumerate(store.shards):
                assert (triple in shard.graph) == (index == owner)
        for document in documents:
            owner = store.shard_for(document.fact_id or document.doc_id)
            for index, shard in enumerate(store.shards):
                assert (document.doc_id in shard.corpus) == (index == owner)

    def test_apply_routes_and_bumps_only_owning_epochs(self):
        store = ShardedStore.partition(_triples(60), _documents(30), num_shards=4)
        assert store.epoch_vector == (1, 1, 1, 1)
        mutation = Mutation.add_triple("entity3", "knows", "entity9")
        owner = store.shard_of(mutation)
        report = store.apply([mutation])
        assert report.shards_touched == (owner,)
        assert report.epoch_vector[owner] == 2
        assert sum(report.epoch_vector) == store.epoch == 4 + 1
        assert report.total_ops == 1

    def test_rejected_batch_leaves_every_shard_untouched(self):
        store = ShardedStore.partition(_triples(60), num_shards=3)
        before = store.state_digests(include_index=False)
        vector = store.epoch_vector
        batch = [
            Mutation.add_triple("entity1", "knows", "entity2"),
            # Routed to a (likely different) shard and invalid there:
            Mutation.remove_triple("no_such_entity", "nope", "never"),
        ]
        with pytest.raises(ValueError):
            store.apply(batch)
        assert store.state_digests(include_index=False) == before
        assert store.epoch_vector == vector

    def test_replay_twin_is_byte_identical_per_shard(self):
        store = ShardedStore.partition(_triples(80), _documents(40), num_shards=3)
        victim = _triples(80)[0]
        store.apply([
            Mutation.add_triple("entity5", "founded", "entity11"),
            Mutation.remove_triple(victim.subject, victim.predicate, victim.object),
            Mutation.add_document(_documents(1, prefix="late")[0]),
        ])
        twin = store.replay_twin()
        assert twin.state_digests() == store.state_digests()
        assert twin.epoch_vector == store.epoch_vector

    def test_save_load_round_trip(self, tmp_path):
        store = ShardedStore.partition(_triples(50), _documents(20), num_shards=2)
        prefix = str(tmp_path / "fleet.jsonl")
        paths = store.save(prefix)
        assert len(paths) == 2
        loaded = ShardedStore.load(prefix, 2)
        assert loaded.state_digests() == store.state_digests()
        assert loaded.epoch_vector == store.epoch_vector

    def test_ring_shard_count_mismatch_rejected(self):
        shards = [VersionedKnowledgeStore(name=f"s{i}") for i in range(3)]
        with pytest.raises(ValueError):
            ShardedStore(shards, HashRing(2))
        with pytest.raises(ValueError):
            ShardedStore([])


class TestShardedServiceRouting:
    def test_requests_land_on_their_owning_shard(self, shard_runner):
        dataset = shard_runner.dataset("factbench")
        router = ShardedValidationService.from_runner(
            shard_runner, 4, ServiceConfig(enable_cache=False)
        )
        requests = [ServiceRequest(fact, "dka", "gemma2:9b") for fact in dataset]

        async def go():
            async with router:
                return await router.submit_many(requests)

        responses = asyncio.run(go())
        assert all(r.outcome is RequestOutcome.COMPLETED for r in responses)
        per_shard = [snapshot.completed for snapshot in router.metrics.per_shard()]
        expected = [0, 0, 0, 0]
        for request in requests:
            expected[router.shard_for(request)] += 1
        assert per_shard == expected
        assert router.metrics.snapshot().completed == len(requests)

    def test_scatter_gather_merge_is_deterministic_and_unsharded_identical(
        self, shard_runner
    ):
        dataset = shard_runner.dataset("factbench")
        requests = [ServiceRequest(fact, "dka", "gemma2:9b") for fact in dataset]
        requests += [ServiceRequest(fact, "giv-z", "gemma2:9b") for fact in dataset]
        config = ServiceConfig(enable_cache=False, max_batch_size=4)

        async def sharded():
            router = ShardedValidationService.from_runner(shard_runner, 3, config)
            async with router:
                return await router.submit_many(requests)

        async def unsharded():
            service = ValidationService.from_runner(shard_runner, config)
            async with service:
                return await asyncio.gather(*(service.submit(r) for r in requests))

        gathered = asyncio.run(sharded())
        flat = asyncio.run(unsharded())
        assert len(gathered) == len(requests)
        for request, sharded_response, plain_response in zip(requests, gathered, flat):
            assert sharded_response.result.fact_id == request.fact.fact_id
            assert sharded_response.result == plain_response.result

    def test_epoch_vector_stamped_and_composite_sum(self, shard_runner):
        store = shard_runner.sharded_store("factbench", 3)
        router = ShardedValidationService.from_runner(
            shard_runner, 3, ServiceConfig(), store=store
        )
        fact = shard_runner.dataset("factbench")[0]

        async def go():
            async with router:
                response = await router.submit(ServiceRequest(fact, "dka", "gemma2:9b"))
                report = await router.apply_mutations(
                    [Mutation.add_triple(fact.triple.subject, "updatedBy", "Feed_X")]
                )
                after = await router.submit(ServiceRequest(fact, "dka", "gemma2:9b"))
                return response, report, after

        response, report, after = asyncio.run(go())
        owner = store.shard_for(fact.triple.subject)
        # Pre-ingest: every shard is at its genesis epoch.
        assert response.epoch_vector == (1, 1, 1)
        assert response.epoch == sum(response.epoch_vector)
        assert report.epoch_vector[owner] == 2
        # Post-ingest: the owning component advanced, the response is a
        # fresh (non-cached) judgement at the new epoch.
        assert after.epoch_vector[owner] == 2
        assert not after.cached
        assert after.result == response.result  # DKA is corpus-independent

    def test_store_and_service_shard_counts_must_agree(self, shard_runner):
        store = shard_runner.sharded_store("factbench", 3)
        with pytest.raises(ValueError):
            ShardedValidationService.from_runner(shard_runner, 2, store=store)

    def test_rejected_cross_shard_ingest_mutates_no_shard(self, shard_runner):
        # The store-layer all-or-nothing contract must hold on the serving
        # path too: a batch whose sub-batch one shard rejects leaves every
        # shard's state and epoch untouched, fleet-wide.
        store = ShardedStore.partition(_triples(60), num_shards=3)
        router = ShardedValidationService.from_runner(
            shard_runner, 3, ServiceConfig(), store=store
        )
        good = Mutation.add_triple("entity1", "knows", "entity2")
        bad = Mutation.remove_triple("no_such_entity", "nope", "never")
        assert store.shard_of(good) != store.shard_of(bad)  # genuinely cross-shard
        before = store.state_digests(include_index=False)
        vector = store.epoch_vector

        async def go():
            async with router:
                with pytest.raises(ValueError):
                    await router.apply_mutations([good, bad])

        asyncio.run(go())
        assert store.state_digests(include_index=False) == before
        assert store.epoch_vector == vector
        assert router.metrics.snapshot().ingests == 0

    def test_apply_mutations_requires_a_store(self, shard_runner):
        router = ShardedValidationService.from_runner(shard_runner, 2)

        async def go():
            async with router:
                with pytest.raises(RuntimeError):
                    await router.apply_mutations(
                        [Mutation.add_triple("a", "b", "c")]
                    )

        asyncio.run(go())

    def test_submit_after_stop_raises(self, shard_runner):
        fact = shard_runner.dataset("factbench")[0]
        router = ShardedValidationService.from_runner(shard_runner, 2, ServiceConfig())

        async def go():
            async with router:
                await router.submit(ServiceRequest(fact, "dka", "gemma2:9b"))
            with pytest.raises(RuntimeError):
                await router.submit(ServiceRequest(fact, "dka", "gemma2:9b"))

        asyncio.run(go())

    def test_mixed_read_write_load_through_the_router(self, shard_runner):
        dataset = shard_runner.dataset("factbench")
        # A fresh fleet (not the module-cached runner one): the epoch
        # accounting below assumes genesis state.
        world = shard_runner.world
        triples = [
            Triple(world.name(f.subject), f.predicate, world.name(f.object))
            for f in world.facts.all_facts()
        ]
        store = ShardedStore.partition(
            triples, list(shard_runner.corpus("factbench")), num_shards=4
        )
        # Non-zero time scale: the ingest only quiesces its owning shard
        # (the rest of the fleet keeps serving), so reads must be slow
        # enough that some genuinely start after the write lands.
        router = ShardedValidationService.from_runner(
            shard_runner, 4, ServiceConfig(queue_depth=4096, time_scale=0.01),
            store=store,
        )
        target = dataset[0]
        batch = [Mutation.add_triple(target.triple.subject, "updatedBy", "Wire_A")]
        workload = build_mixed_workload(
            [dataset], ["dka"], ["gemma2:9b"], 80, [batch], seed=3
        )
        report = LoadGenerator(router, workload, concurrency=4).run_sync()
        assert report.completed == 80
        assert report.ingests == 1
        assert report.rejected == 0 and report.failures == 0
        # The ingest bumped exactly one shard: the composite epoch served
        # before and after differs by one.
        served = report.epochs_served()
        assert served[0] == 4  # genesis: every shard at epoch 1
        assert served[-1] == 5
        assert report.snapshot.ingests == 1
        # Responses served at the new composite carry the owner's bumped
        # component in their epoch vector.
        owner = store.shard_for(target.triple.subject)
        post = [r for r in report.responses
                if r.outcome is RequestOutcome.COMPLETED and r.epoch == 5]
        assert post and all(r.epoch_vector[owner] == 2 for r in post)

    def test_tcp_frontend_serves_a_sharded_router(self, shard_runner):
        import json

        dataset = shard_runner.dataset("factbench")
        store = shard_runner.sharded_store("factbench", 3)

        async def go():
            router = ShardedValidationService.from_runner(
                shard_runner, 3, ServiceConfig(), store=store
            )
            async with router:
                async with TCPValidationFrontend(router, {"factbench": dataset}) as frontend:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", frontend.port
                    )
                    writer.write(
                        json.dumps(
                            {"dataset": "factbench", "fact_id": dataset[0].fact_id,
                             "method": "dka", "model": "gemma2:9b", "id": "shard-req"}
                        ).encode() + b"\n"
                    )
                    await writer.drain()
                    reply = json.loads(await reader.readline())
                    writer.close()
                    await writer.wait_closed()
                    return reply

        reply = asyncio.run(go())
        assert reply["outcome"] == "completed"
        assert reply["id"] == "shard-req"
        assert reply["verdict"] in {"true", "false", "invalid", "tie"}
        # The router's composite epoch vector rides on the wire.  (The store
        # is module-shared: compare against its live vector, not genesis.)
        assert reply["epoch_vector"] == list(store.epoch_vector)

    def test_metrics_rollup_concatenates_latency_windows(self, shard_runner):
        dataset = shard_runner.dataset("factbench")
        router = ShardedValidationService.from_runner(
            shard_runner, 2, ServiceConfig(enable_cache=False)
        )
        requests = [ServiceRequest(fact, "dka", "gemma2:9b") for fact in dataset]

        async def go():
            async with router:
                await router.submit_many(requests)

        asyncio.run(go())
        rollup = router.metrics.snapshot()
        shards = router.metrics.per_shard()
        assert rollup.completed == sum(s.completed for s in shards) == len(requests)
        # Wall is the longest shard window (snapshots are re-taken an instant
        # apart, so compare with a tolerance rather than exactly).
        assert rollup.wall_seconds == pytest.approx(
            max(s.wall_seconds for s in shards), abs=0.05
        )
        assert 0 < rollup.p50_latency_s <= rollup.p95_latency_s <= rollup.p99_latency_s
        # Fleet p99 is bounded by the worst shard's p99 (concatenated window).
        assert rollup.p99_latency_s <= max(s.p99_latency_s for s in shards) + 1e-9
        assert "shard" in router.metrics.format_shard_table()
