"""Docs lint: the documentation tree exists and its CLI examples parse.

Documentation that drifts from the code is worse than none, so this suite
pins the load-bearing parts:

* the README and every ``docs/`` page exist with their promised sections;
* every ``python -m repro.benchmark.cli …`` invocation quoted in README
  or docs parses against the *real* argument parsers (experiment mode and
  service mode both), so a renamed flag or subcommand fails CI here;
* the operations reference documents every service subcommand and every
  serving-topology flag, and the glossary covers every
  :class:`MetricsSnapshot` field the CLI prints.
"""

from __future__ import annotations

import contextlib
import io
import re
import shlex
from dataclasses import fields
from pathlib import Path

import pytest

from repro.benchmark.cli import (
    SERVICE_COMMANDS,
    build_parser,
    build_service_parser,
)
from repro.service.metrics import MetricsSnapshot

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [
    REPO_ROOT / "README.md",
    REPO_ROOT / "docs" / "architecture.md",
    REPO_ROOT / "docs" / "operations.md",
    REPO_ROOT / "docs" / "benchmarks.md",
]

_CLI_LINE = re.compile(r"python -m repro\.benchmark\.cli(?P<args>[^`\n]*)")


def _cli_invocations(text: str):
    """Every ``python -m repro.benchmark.cli …`` argv quoted in ``text``.

    Joins trailing-backslash continuations first so multi-line examples
    lint as one invocation; skips bare mentions with no arguments.
    """
    joined = text.replace("\\\n", " ")
    for match in _CLI_LINE.finditer(joined):
        args = match.group("args").strip()
        yield shlex.split(args)


def _parse(argv):
    """Parse one documented argv with the real parser; returns an error
    message on failure, None on success."""
    parser = (
        build_service_parser()
        if argv and argv[0] in SERVICE_COMMANDS
        else build_parser()
    )
    stderr = io.StringIO()
    try:
        with contextlib.redirect_stderr(stderr), contextlib.redirect_stdout(io.StringIO()):
            parser.parse_args(argv)
    except SystemExit as exc:
        if exc.code not in (0, None):  # --help exits 0 and is fine
            return stderr.getvalue().strip() or f"exit code {exc.code}"
    return None


class TestDocsTreeExists:
    @pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
    def test_page_exists_and_has_headings(self, path):
        assert path.is_file(), f"{path.relative_to(REPO_ROOT)} is missing"
        text = path.read_text(encoding="utf-8")
        assert text.lstrip().startswith("#"), f"{path.name} has no title heading"
        assert len(text) > 500, f"{path.name} is a stub"

    def test_readme_links_every_docs_page(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for page in ("architecture.md", "operations.md", "benchmarks.md"):
            assert f"docs/{page}" in readme, f"README does not point at docs/{page}"
        assert "```" in readme, "README lost its quickstart code block"

    def test_readme_has_architecture_diagram(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for layer in ("ShardedValidationService", "ValidationService",
                      "VersionedKnowledgeStore", "replica group"):
            assert layer in readme, f"architecture diagram lost the {layer} box"


class TestCliExamplesParse:
    @pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
    def test_every_documented_invocation_parses(self, path):
        text = path.read_text(encoding="utf-8")
        invocations = list(_cli_invocations(text))
        failures = [
            (argv, error)
            for argv, error in ((argv, _parse(argv)) for argv in invocations)
            if error is not None
        ]
        assert not failures, "\n".join(
            f"{path.name}: `python -m repro.benchmark.cli {' '.join(argv)}` "
            f"does not parse: {error}"
            for argv, error in failures
        )

    def test_readme_and_operations_actually_contain_examples(self):
        # The lint above is vacuous if the docs stop quoting commands.
        for path in (REPO_ROOT / "README.md", REPO_ROOT / "docs" / "operations.md"):
            count = len(list(_cli_invocations(path.read_text(encoding="utf-8"))))
            assert count >= 4, f"{path.name} quotes only {count} CLI invocations"

    def test_help_smoke(self):
        # `--help` must render for both parser faces (the CI docs-lint step
        # also runs this through the real interpreter).
        assert "experiment" in build_parser().format_help()
        help_text = build_service_parser().format_help()
        for command in SERVICE_COMMANDS:
            assert command in help_text


class TestOperationsReferenceComplete:
    def test_every_subcommand_documented(self):
        text = (REPO_ROOT / "docs" / "operations.md").read_text(encoding="utf-8")
        for command in SERVICE_COMMANDS:
            assert f"`{command}`" in text, f"operations.md misses `{command}`"

    def test_serving_topology_flags_documented(self):
        text = (REPO_ROOT / "docs" / "operations.md").read_text(encoding="utf-8")
        for flag in ("--shards", "--replicas", "--request-timeout",
                     "--queue-depth", "--max-batch-size", "--time-scale"):
            assert flag in text, f"operations.md misses {flag}"

    def test_metrics_glossary_covers_snapshot_fields(self):
        text = (REPO_ROOT / "docs" / "operations.md").read_text(encoding="utf-8")
        # Spot-check the glossary against the dataclass so new fields must
        # be documented; presentation names differ, so map the exceptions.
        aliases = {
            "rejected": "rejected (shed)",
            "cache_hits": "cache hit rate",
            "cache_misses": "cache hit rate",
            "mean_batch_size": "mean batch size",
            "queue_depth": "queue depth",
            "wall_seconds": "wall time",
            "throughput_rps": "throughput",
            "p50_latency_s": "p50",
            "p95_latency_s": "p95",
            "p99_latency_s": "p99",
            "ingested_ops": "ingests",
            "unhealthy_replicas": "unhealthy replicas",
            "batches": "mean batch size",
            "budget_exhausted": "budget exhausted",
        }
        for field in fields(MetricsSnapshot):
            needle = aliases.get(field.name, field.name)
            assert needle in text, (
                f"operations.md glossary misses MetricsSnapshot.{field.name}"
            )

    def test_chaos_runbook_documents_the_fault_grammar(self):
        # The runbook is the schema reference the scenario loader's error
        # messages point at, so it must cover every fault kind, every
        # fault-point family, and every invariant key.
        from repro.chaos import FAULT_KINDS

        text = (REPO_ROOT / "docs" / "operations.md").read_text(encoding="utf-8")
        assert "## Chaos runbook" in text
        for kind in FAULT_KINDS:
            assert f"`{kind}" in text, f"runbook misses fault kind {kind!r}"
        for point in ("store", "frontend", "shard:i", "shard:i/replica:j"):
            assert point in text, f"runbook misses fault point {point!r}"
        for invariant in ("max_failed", "verdict_parity", "staleness_bound_epochs"):
            assert invariant in text, f"runbook misses invariant {invariant!r}"
        assert "DEGRADED" in text and "verdict_digest" in text

    def test_chaos_runbook_quotes_the_pinned_smoke_scenario(self):
        # The CI matrix is pinned: the runbook example and the checked-in
        # smoke.yaml must not drift apart silently.
        text = (REPO_ROOT / "docs" / "operations.md").read_text(encoding="utf-8")
        smoke = REPO_ROOT / "benchmarks" / "scenarios" / "smoke.yaml"
        assert smoke.is_file(), "benchmarks/scenarios/smoke.yaml is missing"
        assert "benchmarks/scenarios/smoke.yaml" in text
        for line in ("name: smoke", "max_attempts: 3", "staleness_bound_epochs: 4"):
            assert line in smoke.read_text(encoding="utf-8"), (
                f"smoke.yaml lost pinned line {line!r}"
            )

    def test_benchmarks_page_names_every_floor_module(self):
        text = (REPO_ROOT / "docs" / "benchmarks.md").read_text(encoding="utf-8")
        floors = sorted(
            path.name
            for path in (REPO_ROOT / "benchmarks").glob("bench_*.py")
            if path.name in {
                "bench_hotpaths.py", "bench_service.py", "bench_store.py",
                "bench_shards.py", "bench_replicas.py", "bench_chaos.py",
                "bench_obs.py", "bench_slo.py", "bench_segment.py",
                "bench_geo.py",
            }
        )
        assert len(floors) == 10
        for name in floors:
            assert name in text, f"docs/benchmarks.md misses {name}"


class TestGeoTierDocsComplete:
    """The geo-tier docs are the reference for the queue layout, the
    watermark protocol, bootstrap, and the edge-lag response — linted
    against the code so the protocol and its operator story stay
    documented."""

    def test_architecture_documents_the_geo_tier(self):
        text = (REPO_ROOT / "docs" / "architecture.md").read_text(encoding="utf-8")
        assert "## Geo replication" in text
        for needle in (
            "OutboundQueue", "EdgeReplica", "GeoReplicator", "watermark",
            "floor_epoch", "bootstrap", "staleness_bound_epochs",
            "drain_batch_limit", "verify_converged", "read-your-writes",
            "exactly-once",
        ):
            assert needle in text, f"architecture.md geo section misses {needle!r}"

    def test_operations_has_the_edge_lag_runbook(self):
        text = (REPO_ROOT / "docs" / "operations.md").read_text(encoding="utf-8")
        assert "## Edge lag runbook" in text
        for needle in (
            "`router_geo_watermark_lag_epochs`", "`router_geo_queue_depth`",
            "`replication-staleness`", "staleness_epochs", "kill_edge",
            "queue_dir", "bench_geo.py",
        ):
            assert needle in text, f"edge-lag runbook misses {needle!r}"

    def test_chaos_runbook_documents_geo_scenarios(self):
        text = (REPO_ROOT / "docs" / "operations.md").read_text(encoding="utf-8")
        for needle in (
            "edge:i", "geo_converged", "edge_staleness_bound_epochs",
            "--drain-seed", "--deterministic-csv",
            "benchmarks/scenarios/geo.yaml",
        ):
            assert needle in text, f"chaos runbook misses geo needle {needle!r}"
        geo = REPO_ROOT / "benchmarks" / "scenarios" / "geo.yaml"
        assert geo.is_file(), "benchmarks/scenarios/geo.yaml is missing"
        for line in ("name: geo", "edges: 2", "geo_converged: true"):
            assert line in geo.read_text(encoding="utf-8"), (
                f"geo.yaml lost pinned line {line!r}"
            )


class TestStorageEngineDocsComplete:
    """The storage-engine section is the reference for the segment file
    format and its recovery rules — linted so the layout, the cache
    semantics, and the migration path stay documented."""

    def test_architecture_documents_the_segment_format(self):
        text = (REPO_ROOT / "docs" / "architecture.md").read_text(encoding="utf-8")
        assert "## Storage engine" in text
        for needle in (
            "RSEGMT01", "footer", "checkpoint", "page cache", "CRC",
            "zlib", "CorruptSegmentError", "floor_epoch", "seek",
            "FLAG_CONTINUES", "torn", "block",
        ):
            assert needle in text, f"architecture.md storage section misses {needle!r}"

    def test_operations_documents_the_migration_path(self):
        text = (REPO_ROOT / "docs" / "operations.md").read_text(encoding="utf-8")
        for needle in (
            "`convert`", "--format", "segment", "jsonl",
            "state digest", "bench_segment.py",
        ):
            assert needle in text, f"operations.md migration note misses {needle!r}"


class TestObservabilityRunbookComplete:
    """The observability runbook is the reference for the span taxonomy,
    the unified registry's metric names, and the event kinds — each is
    linted against the code so a renamed series must be re-documented."""

    @pytest.fixture(scope="class")
    def runbook(self):
        text = (REPO_ROOT / "docs" / "operations.md").read_text(encoding="utf-8")
        assert "## Observability runbook" in text
        return text

    def test_every_registry_metric_name_documented(self, runbook):
        from repro.service import ROUTER_METRIC_NAMES, SERVICE_METRIC_NAMES

        for name in SERVICE_METRIC_NAMES + ROUTER_METRIC_NAMES:
            assert f"`{name}`" in runbook, f"runbook misses metric `{name}`"

    def test_every_span_name_documented(self, runbook):
        from repro.obs import SPAN_TAXONOMY

        for name in SPAN_TAXONOMY:
            assert f"`{name}`" in runbook, f"runbook misses span `{name}`"

    def test_every_event_kind_documented(self, runbook):
        from repro.obs import EVENT_KINDS

        for kind in EVENT_KINDS:
            assert f"`{kind}`" in runbook, f"runbook misses event kind `{kind}`"

    def test_runbook_covers_statuses_sampling_and_exemplars(self, runbook):
        for needle in ("SHED", "DEGRADED", "Head sampling", "sample_rate",
                       "exemplar", "trace_id", "parse_exposition",
                       "VirtualClock", "byte-identical"):
            assert needle in runbook, f"runbook misses {needle!r}"

    def test_slo_section_pins_every_state_rule_and_slo_name(self, runbook):
        # The SLOs-and-alerting section is the reference for the alert
        # lifecycle, the burn-rate windows, and the fleet SLO set — each
        # is linted against the code so a rename must be re-documented.
        from repro.benchmark.cli import _fleet_slos
        from repro.obs import ALERT_STATES, DEFAULT_BURN_RULES

        assert "### SLOs and alerting" in runbook
        for state in ALERT_STATES:
            assert f"`{state}`" in runbook, f"runbook misses alert state `{state}`"
        for rule in DEFAULT_BURN_RULES:
            assert f"`{rule.severity}`" in runbook, (
                f"runbook misses burn severity `{rule.severity}`"
            )
            factor = f"{rule.factor:g}"
            assert factor in runbook, f"runbook misses burn factor {factor}"
        for slo in _fleet_slos(2, 2):
            assert f"`{slo.name}`" in runbook, f"runbook misses SLO `{slo.name}`"
        for needle in ("MetricsScraper", "burn rate", "error budget",
                       "expect_alerts", "forbid_alerts", "obs top", "obs slo",
                       '{"cmd": "slo"}', "bench_slo.py",
                       "slo-name:severity", "max_series", "rollup"):
            assert needle in runbook, f"runbook misses {needle!r}"
