"""Versioned knowledge store: log replay determinism, snapshots, maintenance.

The load-bearing properties pinned here:

* **replay determinism** — ``log -> replay -> byte-identical graph /
  corpus / indexes`` (state digests cover interning order, per-node edge
  order, and posting-array bytes);
* **incremental == rebuild** — applying a mutation batch in place yields
  the same search results, paths, and index bytes as building everything
  from scratch over the final state;
* the dirty-fraction fallbacks take the rebuild path without changing
  observable behaviour;
* snapshots are immutable point-in-time views, cheap at the current epoch;
* compaction preserves state, raises the snapshot floor, and keeps the
  ``store == replay(log)`` invariant.
"""

from __future__ import annotations

import random

import pytest

from repro.kg import KnowledgeGraph, Triple
from repro.retrieval import Corpus, SearchEngine
from repro.retrieval.corpus import Document
from repro.retrieval.embeddings import HashingEmbedder
from repro.store import (
    Mutation,
    MutationLog,
    StoreConfig,
    VersionedKnowledgeStore,
    read_mutations_jsonl,
)


def _triples(count: int, seed: int = 0) -> list:
    rng = random.Random(seed)
    triples = []
    seen = set()
    while len(triples) < count:
        triple = Triple(
            f"e{rng.randrange(count // 2)}",
            f"p{rng.randrange(10)}",
            f"e{rng.randrange(count // 2)}",
        )
        if triple not in seen:
            seen.add(triple)
            triples.append(triple)
    return triples


def _documents(count: int, prefix: str = "d") -> list:
    return [
        Document(
            doc_id=f"{prefix}{i}",
            url=f"https://corpus.example/{prefix}{i}",
            title=f"entity e{i % 40} profile",
            text=f"entity e{i % 40} relates p{i % 10} to entity e{(i + 7) % 40} item {i}",
            source="corpus.example",
        )
        for i in range(count)
    ]


@pytest.fixture()
def store() -> VersionedKnowledgeStore:
    return VersionedKnowledgeStore.bootstrap(
        triples=_triples(300), documents=_documents(80)
    )


class TestMutationSerialisation:
    def test_triple_ops_round_trip(self):
        for factory in (Mutation.add_triple, Mutation.remove_triple):
            mutation = factory("Ada Lovelace", "worksFor", "Analytical Engines")
            assert Mutation.from_json(mutation.to_json()) == mutation

    def test_document_op_round_trips_all_fields(self):
        document = Document(
            doc_id="d1", url="https://x.org/1", title="t", text="body",
            source="x.org", fact_id="fb-1", kind="news",
        )
        mutation = Mutation.add_document(document)
        assert Mutation.from_json(mutation.to_json()).document == document

    def test_malformed_records_rejected(self):
        with pytest.raises(ValueError):
            Mutation.from_json({"op": "drop_table"})
        with pytest.raises(ValueError):
            Mutation.from_json({"op": "add_triple", "subject": "s"})
        with pytest.raises(ValueError):
            Mutation.from_json({"op": "add_document"})
        with pytest.raises(ValueError):
            Mutation("add_triple")  # missing payload

    def test_log_epochs_must_be_monotonic(self):
        log = MutationLog()
        log.append_batch(1, [Mutation.add_triple("a", "p", "b")])
        with pytest.raises(ValueError):
            log.append_batch(1, [Mutation.add_triple("c", "p", "d")])


class TestApply:
    def test_epoch_advances_once_per_batch(self, store):
        assert store.epoch == 1  # genesis
        report = store.apply(
            [Mutation.add_triple("x", "p0", "y"), Mutation.add_triple("y", "p0", "z")]
        )
        assert report.epoch == store.epoch == 2
        assert report.triples_added == 2

    def test_batch_validated_before_any_mutation_lands(self, store):
        digest = store.state_digest()
        bad = [
            Mutation.add_triple("new", "p0", "node"),
            Mutation.remove_triple("absent", "p9", "nothing"),
        ]
        with pytest.raises(ValueError, match="absent"):
            store.apply(bad)
        assert store.state_digest() == digest  # atomic: nothing applied
        assert store.epoch == 1

    def test_duplicate_document_id_rejected(self, store):
        with pytest.raises(ValueError, match="duplicate document id"):
            store.apply([Mutation.add_document(_documents(1)[0])])

    def test_duplicate_triple_add_is_a_counted_noop(self, store):
        existing = list(store.graph)[0]
        report = store.apply([Mutation(op="add_triple", triple=existing)])
        assert report.triples_added == 0
        assert store.epoch == 2

    def test_empty_batch_rejected(self, store):
        with pytest.raises(ValueError):
            store.apply([])

    def test_listeners_fire_with_epoch_and_batch(self, store):
        seen = []
        store.subscribe(lambda epoch, batch: seen.append((epoch, len(batch))))
        store.apply([Mutation.add_triple("a", "p0", "b")])
        assert seen == [(2, 1)]


class TestReplayDeterminism:
    def test_replay_is_byte_identical_across_mixed_batches(self, store):
        live = list(store.graph)
        _ = store.search_engine  # materialise so incremental paths run
        store.apply(
            [Mutation.remove_triple(*t.as_tuple()) for t in live[:10]]
            + [Mutation.add_triple(f"fresh{i}", "p1", f"e{i}") for i in range(5)]
            + [Mutation.add_document(d) for d in _documents(6, prefix="n")]
        )
        store.apply([Mutation.add_document(d) for d in _documents(4, prefix="m")])
        twin = VersionedKnowledgeStore.replay(store.log, config=store.config)
        assert twin.epoch == store.epoch
        assert twin.state_digest() == store.state_digest()
        assert twin.graph.state_digest() == store.graph.state_digest()

    def test_save_load_round_trip_preserves_state_and_config(self, store, tmp_path):
        store.apply([Mutation.add_document(d) for d in _documents(3, prefix="x")])
        path = str(tmp_path / "store.jsonl")
        store.save(path)
        loaded = VersionedKnowledgeStore.load(path)
        assert loaded.epoch == store.epoch
        assert loaded.state_digest() == store.state_digest()
        assert loaded.config == store.config

    def test_replay_honours_graph_rebuild_threshold_deterministically(self):
        config = StoreConfig(graph_rebuild_fraction=0.05)
        store = VersionedKnowledgeStore.bootstrap(triples=_triples(200), config=config)
        live = list(store.graph)
        report = store.apply([Mutation.remove_triple(*t.as_tuple()) for t in live[:40]])
        assert report.graph_rebuilt  # 40/160 > 5%
        twin = VersionedKnowledgeStore.replay(store.log, config=config)
        assert twin.graph.state_digest() == store.graph.state_digest()

    def test_mutations_jsonl_reader(self, tmp_path):
        path = tmp_path / "ops.jsonl"
        path.write_text(
            '{"op": "add_triple", "subject": "a", "predicate": "p", "object": "b"}\n'
            "\n"
            '{"op": "add_document", "document": {"doc_id": "d", "url": "u", '
            '"title": "t", "text": "x", "source": "s"}}\n'
        )
        mutations = read_mutations_jsonl(str(path))
        assert [m.op for m in mutations] == ["add_triple", "add_document"]


class TestIncrementalEqualsRebuild:
    def test_search_engine_add_documents_matches_full_rebuild(self):
        documents = _documents(120)
        corpus = Corpus(documents[:100])
        engine = SearchEngine(corpus)
        for document in documents[100:]:
            corpus.add(document)
        engine.add_documents(documents[100:])
        rebuilt = SearchEngine(corpus)
        assert engine.state_digest() == rebuilt.state_digest()
        for query in ("entity e3 profile", "relates p7 item", "entity e11"):
            fast = [(r.document.doc_id, r.score) for r in engine.search(query, 20)]
            slow = [(r.document.doc_id, r.score) for r in rebuilt.search(query, 20)]
            assert fast == slow

    def test_store_incremental_index_matches_scratch_rebuild(self, store):
        _ = store.search_engine
        report = store.apply([Mutation.add_document(d) for d in _documents(9, prefix="z")])
        assert report.index_strategy == "incremental"
        assert store.search_engine.state_digest() == SearchEngine(store.corpus).state_digest()

    def test_index_rebuild_fallback_above_dirty_fraction(self):
        store = VersionedKnowledgeStore.bootstrap(
            documents=_documents(20), config=StoreConfig(index_rebuild_fraction=0.1)
        )
        _ = store.search_engine
        report = store.apply([Mutation.add_document(d) for d in _documents(10, prefix="big")])
        assert report.index_strategy == "rebuild"
        assert store.search_engine.state_digest() == SearchEngine(store.corpus).state_digest()

    def test_incremental_paths_match_scratch_rebuild(self, store):
        live = list(store.graph)
        store.apply(
            [Mutation.remove_triple(*t.as_tuple()) for t in live[:15]]
            + [Mutation.add_triple(f"e{i}", "p2", f"e{i + 3}") for i in range(10)]
        )
        scratch = VersionedKnowledgeStore.replay(store.log, config=store.config)
        nodes = store.graph.nodes()
        assert nodes == scratch.graph.nodes()
        rng = random.Random(7)
        pairs = [(rng.choice(nodes), rng.choice(nodes)) for _ in range(25)]
        for source, target in pairs:
            assert store.graph.find_paths(source, target, max_length=3) == (
                scratch.graph.find_paths(source, target, max_length=3)
            )

    def test_embedder_warm_cache_extended_on_ingest(self):
        embedder = HashingEmbedder()
        store = VersionedKnowledgeStore.bootstrap(
            documents=_documents(10), embedder=embedder
        )
        new_doc = _documents(1, prefix="warm")[0]
        store.apply([Mutation.add_document(new_doc)])
        assert new_doc.text in embedder._cache  # already embedded, no recompute


class TestSnapshots:
    def test_current_snapshot_is_cheap_and_immutable(self, store):
        snapshot = store.snapshot()
        assert snapshot.epoch == 1
        graph_digest = snapshot.graph.state_digest()
        store.apply([Mutation.add_triple("later", "p0", "thing")])
        # The live store moved on; the snapshot did not.
        assert snapshot.graph.state_digest() == graph_digest
        assert len(snapshot.corpus) == 80
        assert not snapshot.graph.contains("later", "p0", "thing")

    def test_historical_snapshot_replays_the_log(self, store):
        store.apply([Mutation.add_document(d) for d in _documents(5, prefix="h")])
        store.apply([Mutation.add_triple("latest", "p0", "node")])
        old = store.snapshot(1)
        assert len(old.corpus) == 80
        assert not old.graph.contains("latest", "p0", "node")
        mid = store.snapshot(2)
        assert len(mid.corpus) == 85
        assert not mid.graph.contains("latest", "p0", "node")

    def test_snapshot_search_engine_reflects_its_epoch(self, store):
        _ = store.search_engine
        store.apply([Mutation.add_document(d) for d in _documents(5, prefix="s")])
        old = store.snapshot(1)
        assert len(old.search_engine()) == 80
        assert len(store.search_engine) == 85

    def test_future_epoch_rejected(self, store):
        with pytest.raises(ValueError, match="future"):
            store.snapshot(99)


class TestCompaction:
    def test_compaction_preserves_state_and_raises_floor(self, store, tmp_path):
        live = list(store.graph)
        store.apply([Mutation.remove_triple(*t.as_tuple()) for t in live[:5]])
        store.apply([Mutation.add_document(d) for d in _documents(3, prefix="c")])
        _ = store.search_engine
        epoch = store.epoch
        dropped = store.compact()
        assert dropped > 0
        assert store.epoch == epoch  # epochs stay monotonic across compaction
        assert store.log.floor_epoch == epoch
        # The invariant store == replay(log) still holds post-compaction.
        twin = VersionedKnowledgeStore.replay(store.log, config=store.config)
        assert twin.state_digest() == store.state_digest()
        # And it round-trips through disk.
        path = str(tmp_path / "compacted.jsonl")
        store.save(path)
        assert VersionedKnowledgeStore.load(path).state_digest() == store.state_digest()

    def test_snapshots_below_the_floor_are_gone(self, store):
        store.apply([Mutation.add_triple("x", "p0", "y")])
        store.compact()
        with pytest.raises(ValueError, match="floor"):
            store.snapshot(1)


class TestAdoption:
    def test_adopted_substrates_are_maintained_in_place(self):
        corpus = Corpus(_documents(30))
        engine = SearchEngine(corpus)
        store = VersionedKnowledgeStore.adopt(
            corpus=corpus, search_engine=engine, triples=_triples(40)
        )
        assert store.epoch == 1
        new_doc = _documents(1, prefix="adopted")[0]
        store.apply([Mutation.add_document(new_doc)])
        # The adopted objects themselves grew — no rebuild, no copies.
        assert store.corpus is corpus and store.search_engine is engine
        assert len(engine) == 31
        twin = VersionedKnowledgeStore.replay(store.log, config=store.config)
        assert twin.state_digest() == store.state_digest()

    def test_adopt_rejects_foreign_engine(self):
        corpus = Corpus(_documents(5))
        other = Corpus(_documents(5, prefix="o"))
        with pytest.raises(ValueError):
            VersionedKnowledgeStore.adopt(corpus=corpus, search_engine=SearchEngine(other))


class TestGraphCopy:
    def test_copy_preserves_interning_and_traversal_order(self):
        graph = KnowledgeGraph("orig")
        for triple in _triples(150, seed=3):
            graph.add(triple)
        graph.remove(list(graph)[0])  # leave a ghost entry
        clone = graph.copy()
        assert clone.state_digest() == graph.state_digest()
        assert clone._node_ids == graph._node_ids  # interning tables intact
        nodes = graph.nodes()
        rng = random.Random(1)
        for _ in range(15):
            s, t = rng.choice(nodes), rng.choice(nodes)
            assert clone.find_paths(s, t, max_length=3) == graph.find_paths(s, t, max_length=3)

    def test_copy_is_independent_of_the_source(self):
        graph = KnowledgeGraph("orig")
        graph.add(Triple("a", "p", "b"))
        clone = graph.copy()
        clone.add(Triple("c", "p", "d"))
        graph.remove(Triple("a", "p", "b"))
        assert graph.state_digest() != clone.state_digest()
        assert clone.contains("a", "p", "b")
        assert not graph.contains("c", "p", "d")
        assert len(graph) == 0 and len(clone) == 2
