"""Chaos engine: virtual clocks, fault schedules, retry/degrade, scenarios.

Covers the chaos subsystem's contracts:

* :class:`VirtualClock` — sleepers wake in deadline order with the clock
  reading exactly their own deadline; time never moves on its own;
* the fault grammar — specs, events, and schedules validate up front
  (bad kinds, bad targets, negative times, overlapping windows);
* :class:`FaultInjector` — lazy timeline evaluation on a virtual clock,
  consume-once kills, seeded error determinism;
* :class:`RetryPolicy` — bounded budgets, capped jittered backoff,
  deadline propagation; the router serves stale ``DEGRADED`` verdicts
  after budget exhaustion and keeps PR 5 ``FAILED`` semantics without a
  policy;
* health probes on the injectable clock — an unhealthy replica becomes a
  probe candidate exactly when virtual time passes ``probe_interval_s``;
* the declarative scenario layer — malformed YAML fails with
  :class:`ScenarioError` naming the offending key, and the same scenario
  + seed yields byte-identical traffic and run tables.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import (
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    InjectedFaultError,
    ScenarioError,
    ScenarioRunner,
    TrafficSpec,
    VirtualClock,
    build_traffic,
    load_scenario,
)
from repro.service import (
    RequestOutcome,
    RetryPolicy,
    ServiceConfig,
    ServiceRequest,
    ShardedValidationService,
)
from repro.service.loadgen import IngestRequest


# --------------------------------------------------------------- VirtualClock


class TestVirtualClock:
    def test_time_only_moves_on_advance(self):
        clock = VirtualClock()
        assert clock.now() == 0.0
        clock.advance(1.5)
        assert clock.now() == 1.5
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_sleepers_wake_in_deadline_order_observing_their_deadline(self):
        async def go():
            clock = VirtualClock()
            log = []

            async def sleeper(name, seconds):
                await clock.sleep(seconds)
                log.append((name, clock.now()))

            tasks = [
                asyncio.ensure_future(sleeper("late", 0.3)),
                asyncio.ensure_future(sleeper("early", 0.1)),
                asyncio.ensure_future(sleeper("mid", 0.2)),
            ]
            await asyncio.sleep(0)
            assert clock.pending_sleepers == 3
            assert clock.next_deadline() == pytest.approx(0.1)
            released = await clock.run_for(0.25)
            assert released == 2
            assert log == [("early", pytest.approx(0.1)), ("mid", pytest.approx(0.2))]
            await clock.run_for(0.1)
            assert [name for name, _ in log] == ["early", "mid", "late"]
            # The late sleeper woke at its own deadline, not the advance target.
            assert log[-1][1] == pytest.approx(0.3)
            await asyncio.gather(*tasks)

        asyncio.run(go())

    def test_zero_sleep_yields_without_parking(self):
        async def go():
            clock = VirtualClock()
            await clock.sleep(0)
            await clock.sleep(-1)
            assert clock.pending_sleepers == 0
            with pytest.raises(ValueError):
                clock.next_deadline()

        asyncio.run(go())


# -------------------------------------------------------------- fault grammar


class TestFaultGrammar:
    def test_spec_parse_accepts_the_documented_forms(self):
        assert FaultSpec.parse("kill").kind == "kill"
        assert FaultSpec.parse("stall:0.5").duration_s == 0.5
        assert FaultSpec.parse("error:0.25").rate == 0.25
        slow = FaultSpec.parse("slow:0.02:0.01")
        assert (slow.latency_s, slow.jitter_s) == (0.02, 0.01)
        assert FaultSpec.parse({"kind": "stall", "duration_s": 1.0}).duration_s == 1.0

    @pytest.mark.parametrize(
        "bad",
        [
            "explode",
            "kill:1",
            "stall",
            "stall:0",
            "error:0",
            "error:1.5",
            "slow",
            "slow:0.1:0.1:0.1",
            {"kind": "stall", "duration_s": 1.0, "bogus": 2},
            {"duration_s": 1.0},
            42,
        ],
    )
    def test_spec_parse_rejects_malformed_input(self, bad):
        with pytest.raises(ValueError):
            FaultSpec.parse(bad)

    def test_event_validation(self):
        with pytest.raises(ValueError, match="at_s"):
            FaultEvent(at_s=-0.1, target="store", fault=FaultSpec.parse("kill"))
        with pytest.raises(ValueError, match="clear_at_s"):
            FaultEvent(
                at_s=1.0, target="store", fault=FaultSpec.parse("stall:1"), clear_at_s=0.5
            )
        with pytest.raises(ValueError, match="target"):
            FaultEvent(at_s=0.0, target="shard:0/worker:1", fault=FaultSpec.parse("kill"))
        with pytest.raises(ValueError, match="permanent"):
            FaultEvent(
                at_s=0.0,
                target="shard:0/replica:1",
                fault=FaultSpec.parse("kill"),
                clear_at_s=1.0,
            )

    def test_schedule_rejects_overlapping_windows_per_target(self):
        first = FaultEvent(
            at_s=0.0, target="shard:0", fault=FaultSpec.parse("stall:1"), clear_at_s=1.0
        )
        overlapping = FaultEvent(
            at_s=0.5, target="shard:0", fault=FaultSpec.parse("error:0.5"), clear_at_s=2.0
        )
        with pytest.raises(ValueError, match="overlapping"):
            FaultSchedule([first, overlapping])
        # Same windows on different targets are fine.
        FaultSchedule(
            [
                first,
                FaultEvent(
                    at_s=0.5,
                    target="shard:1",
                    fault=FaultSpec.parse("error:0.5"),
                    clear_at_s=2.0,
                ),
            ]
        )

    def test_kill_targets_lists_replica_kills_only(self):
        schedule = FaultSchedule(
            [
                FaultEvent(at_s=0.2, target="shard:1/replica:0", fault=FaultSpec.parse("kill")),
                FaultEvent(at_s=0.1, target="store", fault=FaultSpec.parse("kill")),
            ]
        )
        assert schedule.kill_targets() == [(0.2, (1, 0))]


# -------------------------------------------------------------- FaultInjector


class TestFaultInjector:
    def _injector(self, events, seed=0):
        clock = VirtualClock()
        injector = FaultInjector(FaultSchedule(events), clock=clock, seed=seed)
        injector.start()
        return injector, clock

    def test_lazy_timeline_activates_and_clears_on_the_clock(self):
        injector, clock = self._injector(
            [
                FaultEvent(
                    at_s=0.5,
                    target="shard:0",
                    fault=FaultSpec.parse("error:1.0"),
                    clear_at_s=1.0,
                )
            ]
        )
        injector.check("shard:0/replica:0")  # before at_s: inert
        clock.advance(0.6)
        with pytest.raises(InjectedFaultError, match="error"):
            injector.check("shard:0/replica:0")
        injector.check("shard:1/replica:0")  # other shard: no match
        clock.advance(0.5)  # past clear_at_s
        injector.check("shard:0/replica:0")
        assert injector.injected["error"] == 1

    def test_window_fully_passed_never_activates(self):
        injector, clock = self._injector(
            [
                FaultEvent(
                    at_s=0.1,
                    target="store",
                    fault=FaultSpec.parse("error:1.0"),
                    clear_at_s=0.2,
                )
            ]
        )
        clock.advance(5.0)  # the whole window passed while nothing fired
        injector.check("store")
        assert injector.injected["error"] == 0

    def test_due_kills_are_consumed_exactly_once(self):
        injector, clock = self._injector(
            [FaultEvent(at_s=0.3, target="shard:0/replica:1", fault=FaultSpec.parse("kill"))]
        )
        assert injector.due_kills() == []
        clock.advance(0.4)
        assert injector.due_kills() == [(0, 1)]
        assert injector.due_kills() == []
        # The point itself still raises as defence in depth.
        with pytest.raises(InjectedFaultError, match="kill"):
            injector.check("shard:0/replica:1")

    def test_stall_suspends_on_the_injector_clock(self):
        async def go():
            injector, clock = self._injector(
                [FaultEvent(at_s=0.0, target="frontend", fault=FaultSpec.parse("stall:0.5"))]
            )
            done = []

            async def fire():
                await injector.fire("frontend")
                done.append(clock.now())

            task = asyncio.ensure_future(fire())
            await asyncio.sleep(0)
            assert not done  # parked on the virtual clock
            await clock.run_for(0.6)
            await task
            assert done == [pytest.approx(0.5)]

        asyncio.run(go())

    def test_seeded_error_faults_inject_identically(self):
        def run(seed):
            injector, clock = self._injector(
                [FaultEvent(at_s=0.0, target="shard:0", fault=FaultSpec.parse("error:0.5"))],
                seed=seed,
            )
            clock.advance(0.1)
            outcomes = []
            for _ in range(40):
                try:
                    injector.check("shard:0/replica:0")
                    outcomes.append(False)
                except InjectedFaultError:
                    outcomes.append(True)
            return outcomes

        assert run(7) == run(7)
        assert run(7) != run(8)  # and the seed actually matters
        assert any(run(7)) and not all(run(7))  # rate 0.5 is a coin, not a constant


# ---------------------------------------------------------------- RetryPolicy


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_s=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(deadline_s=0)

    def test_backoff_grows_exponentially_and_caps(self):
        import random

        policy = RetryPolicy(
            max_attempts=5,
            base_backoff_s=0.1,
            multiplier=2.0,
            max_backoff_s=0.3,
            jitter=0.0,
        )
        rng = random.Random(0)
        waits = [policy.backoff_s(n, rng) for n in (1, 2, 3, 4)]
        assert waits == [0.1, 0.2, 0.3, 0.3]  # capped at max_backoff_s

    def test_jitter_only_shrinks_the_wait(self):
        import random

        policy = RetryPolicy(base_backoff_s=0.1, multiplier=1.0, jitter=0.5)
        rng = random.Random(3)
        for retry in range(1, 20):
            wait = policy.backoff_s(retry, rng)
            assert 0.05 <= wait <= 0.1

    def test_attempt_timeout_takes_the_tighter_bound(self):
        policy = RetryPolicy()
        assert policy.attempt_timeout_s(0.5, 0.2) == 0.2
        assert policy.attempt_timeout_s(0.1, 0.4) == 0.1
        assert policy.attempt_timeout_s(None, 0.4) == 0.4
        assert policy.attempt_timeout_s(0.5, None) == 0.5
        assert policy.attempt_timeout_s(None, None) is None


# ----------------------------------------------- probes on the virtual clock


class TestProbeTimingOnVirtualClock:
    def test_unhealthy_replica_becomes_probe_candidate_after_interval(self, runner):
        clock = VirtualClock()
        router = ShardedValidationService.from_runner(
            runner,
            1,
            ServiceConfig(enable_cache=False),
            replicas=2,
            probe_interval_s=0.25,
            clock=clock,
        )
        router.mark_unhealthy(0, 1)
        # Resting: the unhealthy replica stays at the tail as a last resort.
        assert router._replica_order(0) == [0, 1]
        assert router.health[0][1].probes == 0
        clock.advance(0.2)  # not yet due
        assert router._replica_order(0) == [0, 1]
        clock.advance(0.1)  # 0.3 s > probe_interval_s: probe due
        order = router._replica_order(0)
        assert order[0] == 1, "probe-due replica should head the pick order"
        assert router.health[0][1].probes == 1
        assert router.health[0][1].probing


# ------------------------------------------------- retry/degrade integration


@pytest.fixture(scope="module")
def chaos_runner():
    from repro.benchmark import BenchmarkRunner, ExperimentConfig

    return BenchmarkRunner(
        ExperimentConfig(
            scale=0.03,
            max_facts_per_dataset=16,
            world_scale=0.15,
            methods=("dka",),
            datasets=("factbench",),
            models=("gemma2:9b",),
            include_commercial_in_grid=False,
            seed=11,
        )
    )


class TestGracefulDegradation:
    def _requests(self, runner, count=4):
        dataset = runner.dataset("factbench")
        return [ServiceRequest(fact, "dka", "gemma2:9b") for fact in dataset[:count]]

    def _outage(self):
        return FaultSchedule(
            [FaultEvent(at_s=0.0, target="shard:0", fault=FaultSpec.parse("error:1.0"))]
        )

    def test_budget_exhaustion_serves_stale_epoch_tagged_degraded(self, chaos_runner):
        policy = RetryPolicy(max_attempts=3, base_backoff_s=0.001, max_backoff_s=0.005)
        requests = self._requests(chaos_runner)

        async def go():
            router = ShardedValidationService.from_runner(
                chaos_runner,
                1,
                ServiceConfig(enable_cache=False),
                replicas=2,
                retry_policy=policy,
            )
            async with router:
                warm = [await router.submit(request) for request in requests]
                injector = FaultInjector(self._outage(), clock=router.clock)
                router.set_fault_injection(injector)
                injector.start()
                dark = [await router.submit(request) for request in requests]
                return warm, dark, router.metrics.snapshot()

        warm, dark, snapshot = asyncio.run(go())
        assert all(r.outcome is RequestOutcome.COMPLETED for r in warm)
        for before, after in zip(warm, dark):
            assert after.outcome is RequestOutcome.DEGRADED
            assert after.degraded and not after.failed
            assert after.stale_epoch is not None
            assert after.result == before.result  # the stale verdict is last-known-good
            assert after.retries == policy.max_attempts - 1
        assert snapshot.degraded == len(requests)
        assert snapshot.budget_exhausted == len(requests)
        assert snapshot.retries == len(requests) * (policy.max_attempts - 1)

    def test_without_retry_policy_total_outage_still_fails_explicitly(self, chaos_runner):
        requests = self._requests(chaos_runner, count=2)

        async def go():
            router = ShardedValidationService.from_runner(
                chaos_runner, 1, ServiceConfig(enable_cache=False), replicas=2
            )
            async with router:
                warm = [await router.submit(request) for request in requests]
                injector = FaultInjector(self._outage(), clock=router.clock)
                router.set_fault_injection(injector)
                injector.start()
                dark = [await router.submit(request) for request in requests]
                return warm, dark

        warm, dark = asyncio.run(go())
        assert all(r.outcome is RequestOutcome.COMPLETED for r in warm)
        # PR 5 semantics preserved: no policy means no retry loop and no
        # degradation — a total outage surfaces as FAILED with the cause.
        for response in dark:
            assert response.outcome is RequestOutcome.FAILED
            assert "injected error fault" in (response.error or "")

    def test_cold_cache_budget_exhaustion_fails_rather_than_lies(self, chaos_runner):
        policy = RetryPolicy(max_attempts=2, base_backoff_s=0.001)
        requests = self._requests(chaos_runner, count=2)

        async def go():
            router = ShardedValidationService.from_runner(
                chaos_runner,
                1,
                ServiceConfig(enable_cache=False),
                replicas=2,
                retry_policy=policy,
            )
            async with router:
                injector = FaultInjector(self._outage(), clock=router.clock)
                router.set_fault_injection(injector)
                injector.start()
                return [await router.submit(request) for request in requests]

        for response in asyncio.run(go()):
            # Nothing was ever served for these coordinates, so there is no
            # last known good verdict to degrade to.
            assert response.outcome is RequestOutcome.FAILED
            assert response.retries == policy.max_attempts - 1


# --------------------------------------------------------- scenario validation


def _minimal_scenario(**overrides) -> dict:
    scenario = {
        "name": "unit",
        "seed": 3,
        "dataset": "factbench",
        "methods": ["dka"],
        "models": ["gemma2:9b"],
        "requests": 8,
        "concurrency": 2,
        "matrix": {
            "topology": [{"shards": 1, "replicas": 2}],
            "traffic": [{"shape": "steady"}],
            "faults": [
                {
                    "name": "kill",
                    "schedule": [
                        {"at_s": 0.0, "target": "shard:0/replica:1", "fault": "kill"}
                    ],
                }
            ],
        },
    }
    scenario.update(overrides)
    return scenario


class TestScenarioValidation:
    def test_minimal_scenario_loads(self):
        scenario = load_scenario(_minimal_scenario())
        assert scenario.cell_count == 2  # reference + one fault case

    def test_yaml_file_roundtrip_and_malformed_yaml(self, tmp_path):
        import yaml

        path = tmp_path / "ok.yaml"
        path.write_text(yaml.safe_dump(_minimal_scenario()), encoding="utf-8")
        assert load_scenario(path).name == "unit"

        broken = tmp_path / "broken.yaml"
        broken.write_text("matrix: [unclosed\n  - {shards: 1", encoding="utf-8")
        with pytest.raises(ScenarioError, match="not valid YAML"):
            load_scenario(broken)
        with pytest.raises(ScenarioError, match="does not exist"):
            load_scenario(tmp_path / "missing.yaml")
        scalar = tmp_path / "scalar.yaml"
        scalar.write_text("just a string", encoding="utf-8")
        with pytest.raises(ScenarioError, match="mapping"):
            load_scenario(scalar)

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda s: s.update(bogus=1), "unknown scenario keys"),
            (lambda s: s.update(requests=0), "requests"),
            (lambda s: s.update(methods=[]), "at least one method"),
            (lambda s: s.update(retry={"max_attempts": 0}), "invalid retry policy"),
            (lambda s: s.update(retry={"bogus": 1}), "invalid retry policy"),
            (lambda s: s.update(service={"bogus": 1}), "unknown service keys"),
            (lambda s: s.update(invariants={"max_failed": -1}), "max_failed"),
            (lambda s: s.pop("matrix"), "matrix"),
            (lambda s: s["matrix"].update(topology=[]), "matrix is empty"),
            (lambda s: s["matrix"].update(traffic=[]), "matrix is empty"),
            (lambda s: s["matrix"].update(faults=[]), "matrix is empty"),
            (
                lambda s: s["matrix"].update(traffic=[{"shape": "square_wave"}]),
                "unknown traffic shape",
            ),
            (
                lambda s: s["matrix"].update(
                    traffic=[{"shape": "steady"}, {"shape": "steady"}]
                ),
                "repeats a shape",
            ),
            (
                lambda s: s["matrix"]["faults"][0]["schedule"].__setitem__(
                    0, {"at_s": -1.0, "target": "store", "fault": "kill"}
                ),
                "at_s",
            ),
            (
                lambda s: s["matrix"]["faults"][0]["schedule"].__setitem__(
                    0, {"at_s": 0.0, "target": "rack:9", "fault": "kill"}
                ),
                "unknown fault target",
            ),
            (
                lambda s: s["matrix"]["faults"][0]["schedule"].__setitem__(
                    0, {"at_s": 0.0, "target": "store", "fault": "melt"}
                ),
                "unknown fault kind",
            ),
            (
                lambda s: s["matrix"]["faults"][0]["schedule"].extend(
                    [
                        {"at_s": 0.0, "target": "store", "fault": "stall:1", "clear_at_s": 2.0},
                        {"at_s": 1.0, "target": "store", "fault": "stall:1", "clear_at_s": 3.0},
                    ]
                ),
                "overlapping",
            ),
            (
                lambda s: s["matrix"]["faults"].append(s["matrix"]["faults"][0]),
                "repeats a name",
            ),
            (
                lambda s: s["matrix"].update(
                    traffic=[{"shape": "steady", "write_fraction": 0.1}]
                ),
                "'store' is false",
            ),
        ],
    )
    def test_malformed_scenarios_raise_scenario_error(self, mutate, message):
        scenario = _minimal_scenario()
        mutate(scenario)
        with pytest.raises(ScenarioError, match=message):
            load_scenario(scenario)

    def test_fault_targets_checked_against_every_topology(self):
        scenario = _minimal_scenario()
        scenario["matrix"]["faults"][0]["schedule"][0]["target"] = "shard:3/replica:0"
        with pytest.raises(ScenarioError, match="only 1 shard"):
            load_scenario(scenario)
        scenario = _minimal_scenario()
        scenario["matrix"]["faults"][0]["schedule"][0]["target"] = "shard:0/replica:5"
        with pytest.raises(ScenarioError, match="only 2 replica"):
            load_scenario(scenario)


# ----------------------------------------------------------- traffic shapes


class TestTrafficShapes:
    def _key(self, item):
        if isinstance(item, IngestRequest):
            return ("write", len(item.mutations))
        return (item.fact.fact_id, item.method, item.model)

    @settings(max_examples=25, deadline=None)
    @given(
        shape=st.sampled_from(["steady", "diurnal", "flash_crowd", "zipf"]),
        seed=st.integers(min_value=0, max_value=2**31),
        requests=st.integers(min_value=1, max_value=60),
    )
    def test_same_spec_and_seed_yield_identical_schedules(
        self, factbench_small, shape, seed, requests
    ):
        spec = TrafficSpec(shape=shape, requests=requests, seed=seed)
        first = build_traffic([factbench_small], ["dka"], ["gemma2:9b"], spec)
        second = build_traffic([factbench_small], ["dka"], ["gemma2:9b"], spec)
        assert len(first) == requests
        assert [self._key(item) for item in first] == [self._key(item) for item in second]

    def test_flash_crowd_concentrates_the_burst_window(self, factbench_small):
        spec = TrafficSpec(
            shape="flash_crowd",
            requests=400,
            seed=5,
            hot_fraction=0.05,
            burst_start=0.5,
            burst_duration=0.25,
            burst_intensity=1.0,
        )
        schedule = build_traffic([factbench_small], ["dka"], ["gemma2:9b"], spec)
        burst = schedule[200:300]
        hot_ids = {item.fact.fact_id for item in burst}
        background_ids = {item.fact.fact_id for item in schedule[:200]}
        # The burst hammers a hot set far smaller than the background spread.
        assert len(hot_ids) < len(background_ids) / 2

    def test_zipf_skews_toward_the_head(self, factbench_small):
        from collections import Counter

        spec = TrafficSpec(shape="zipf", requests=600, seed=9, zipf_s=1.5)
        schedule = build_traffic([factbench_small], ["dka"], ["gemma2:9b"], spec)
        counts = Counter(item.fact.fact_id for item in schedule)
        top = counts.most_common(1)[0][1]
        assert top >= 600 / len(counts) * 2, "zipf head should be well above uniform"

    def test_write_mix_splices_the_declared_fraction(self, factbench_small):
        from repro.retrieval.corpus import Document
        from repro.store import Mutation

        spec = TrafficSpec(shape="steady", requests=100, seed=1, write_fraction=0.1)

        def factory(index):
            return [
                Mutation.add_document(
                    Document(
                        doc_id=f"w{index}",
                        url=f"https://x/{index}",
                        title="t",
                        text="evidence",
                        source="x",
                    )
                )
            ]

        schedule = build_traffic(
            [factbench_small], ["dka"], ["gemma2:9b"], spec, ingest_factory=factory
        )
        writes = [item for item in schedule if isinstance(item, IngestRequest)]
        assert len(writes) == 10
        assert len(schedule) == 110
        with pytest.raises(ValueError, match="ingest_factory"):
            build_traffic([factbench_small], ["dka"], ["gemma2:9b"], spec)


# ------------------------------------------------------- scenario runner smoke


class TestScenarioRunnerSmoke:
    def test_kill_scenario_passes_invariants_and_is_deterministic(self, runner):
        scenario = load_scenario(
            _minimal_scenario(
                requests=24,
                concurrency=4,
                retry={"max_attempts": 2, "base_backoff_s": 0.001},
                service={"request_timeout_s": 0.25, "probe_interval_s": 0.02},
            )
        )
        first = ScenarioRunner(runner, scenario).run()
        second = ScenarioRunner(runner, scenario).run()
        assert first.ok, f"invariant failures: {first.failed_checks()}"
        assert len(first.cells) == 2
        assert first.csv(include_timings=False) == second.csv(include_timings=False)
        # The full CSV adds the timing columns on top of the deterministic ones.
        header = first.csv(include_timings=True).splitlines()[0]
        for column in ("verdict_digest", "p99_ms", "retries", "degraded"):
            assert column in header
        markdown = first.markdown()
        assert "all invariants passed" in markdown
        assert "s1xr2/steady/kill" in markdown
