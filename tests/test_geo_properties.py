"""Property-based geo-replication tests: convergence and session safety.

The geo tier's contract, for *any* write schedule, batch sizing, edge
count, bootstrap checkpoint, and drain interleaving:

* once every queue drains, each edge's per-shard ``state_digest`` is
  byte-identical to the primary's (deterministic replay makes convergence
  provable, not probabilistic);
* reported watermarks only advance, and draining never skips or
  double-applies a batch — an edge's applied epochs march densely from
  its bootstrap checkpoint to the primary's head;
* through the serving tier, a session never observes an epoch vector
  below its own last write, no matter how reads race the drain loops
  (edge-served reads are gated on reported watermarks; everything else
  falls back to the primary).

Hypothesis drives the interleavings; failures shrink to a minimal
schedule and replay exactly.
"""

from __future__ import annotations

import asyncio
import random
from typing import Dict, List, Set

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kg import Triple
from repro.retrieval.corpus import Document
from repro.service import (
    RequestOutcome,
    ServiceConfig,
    ServiceRequest,
    ShardedValidationService,
)
from repro.store import GeoReplicator, Mutation, ShardedStore

NUM_SHARDS = 2


# ----------------------------------------------------------- history builder


def _seed_triples(count: int, rng: random.Random) -> List[Triple]:
    triples: Set[Triple] = set()
    while len(triples) < count:
        triples.add(
            Triple(
                f"entity{rng.randrange(20)}",
                f"pred{rng.randrange(4)}",
                f"entity{rng.randrange(20)}",
            )
        )
    return sorted(triples)


def _document(index: int, rng: random.Random) -> Document:
    subject = rng.randrange(20)
    return Document(
        doc_id=f"geo-doc{index}",
        url=f"https://corpus.example/geo{index}",
        title=f"entity{subject} dossier",
        text=f"entity{subject} links entity{rng.randrange(20)}; item {index}.",
        source="corpus.example",
    )


def _random_batches(
    rng: random.Random, count: int, live: Set[Triple]
) -> List[List[Mutation]]:
    """``count`` valid mutation batches over ``live`` (the store's triples)."""
    next_doc = 0
    batches: List[List[Mutation]] = []
    for _ in range(count):
        batch: List[Mutation] = []
        for _ in range(rng.randrange(1, 5)):
            roll = rng.random()
            if roll < 0.5:
                triple = Triple(
                    f"entity{rng.randrange(20)}",
                    f"pred{rng.randrange(4)}",
                    f"entity{rng.randrange(20)}",
                )
                batch.append(Mutation(op="add_triple", triple=triple))
                live.add(triple)
            elif roll < 0.75 and live:
                victim = rng.choice(sorted(live))
                batch.append(Mutation(op="remove_triple", triple=victim))
                live.discard(victim)
            else:
                batch.append(Mutation.add_document(_document(next_doc, rng)))
                next_doc += 1
        batches.append(batch)
    return batches


def _fresh_fleet(rng: random.Random):
    triples = _seed_triples(30, rng)
    documents = [_document(1000 + i, rng) for i in range(8)]
    fleet = ShardedStore.partition(triples, documents, num_shards=NUM_SHARDS)
    return fleet, set(triples)


# ------------------------------------------------- store-level convergence


class TestDrainInterleavingsConverge:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_any_interleaving_reaches_byte_identical_digests(self, data):
        """Writes, partial drains (any edge, any shard order, any batch
        budget), and late-joining edges interleave arbitrarily; after the
        final full drain every edge proves digest parity per shard."""
        rng = random.Random(data.draw(st.integers(0, 2**20), label="seed"))
        primary, live = _fresh_fleet(rng)
        geo = GeoReplicator(primary)
        num_edges = data.draw(st.integers(1, 3), label="edges")
        names = [f"edge-{i}" for i in range(num_edges)]
        for name in names:
            geo.add_edge(name)

        late_joiner = data.draw(st.booleans(), label="late_joiner")
        batches = _random_batches(
            rng, data.draw(st.integers(1, 10), label="writes"), live
        )
        for index, batch in enumerate(batches):
            primary.apply(batch)
            if late_joiner and index == len(batches) // 2:
                # A cold edge bootstrapping mid-history: snapshot replay up
                # to the current epochs, queue replay for the rest.
                names.append("edge-late")
                geo.add_edge("edge-late")
                late_joiner = False
            # Arbitrary partial drains: hypothesis picks who catches up,
            # how far, and on which shard.
            for _ in range(data.draw(st.integers(0, 2), label="drains")):
                name = data.draw(st.sampled_from(names), label="which")
                shard = data.draw(
                    st.one_of(st.none(), st.integers(0, NUM_SHARDS - 1)),
                    label="shard",
                )
                geo.drain(
                    name,
                    shard_index=shard,
                    max_batches=data.draw(st.integers(1, 3), label="budget"),
                )

        geo.drain_all()
        expected = primary.state_digests(include_index=False)
        for name in names:
            assert geo.converged(name)
            assert geo.verify_converged(name) == expected
            assert geo.watermark_vector(name) == primary.epoch_vector
            assert geo.depth(name) == 0

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_watermarks_advance_monotonically_without_skips_or_repeats(self, data):
        """Reported watermark vectors never regress, and the total batches
        each edge applies equals exactly the epochs between its bootstrap
        checkpoint and the primary head — dense, no skip, no double-apply."""
        rng = random.Random(data.draw(st.integers(0, 2**20), label="seed"))
        primary, live = _fresh_fleet(rng)
        geo = GeoReplicator(primary)
        geo.add_edge("edge-0")
        start = geo.watermark_vector("edge-0")

        applied = 0
        last: Dict[str, tuple] = {"edge-0": start}
        for batch in _random_batches(
            rng, data.draw(st.integers(1, 8), label="writes"), live
        ):
            primary.apply(batch)
            if data.draw(st.booleans(), label="drain_now"):
                applied += geo.drain(
                    "edge-0", max_batches=data.draw(st.integers(1, 2), label="budget")
                )
            current = geo.watermark_vector("edge-0")
            assert all(now >= before for now, before in zip(current, last["edge-0"]))
            last["edge-0"] = current

        applied += geo.drain("edge-0")
        owed = sum(
            head - begin for head, begin in zip(primary.epoch_vector, start)
        )
        assert applied == owed
        assert geo.lag_vector("edge-0") == (0,) * NUM_SHARDS


# --------------------------------------------- serving-tier session safety


class TestSessionsThroughTheRouter:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_no_session_observes_a_vector_below_its_own_write(self, runner, data):
        """Arbitrary per-session interleavings of writes and region-pinned
        reads, racing two background drain loops (one deliberately
        laggy): every completed read's epoch vector covers the session's
        own landed writes component-wise, and every edge-served read
        carries a vector at least the edge's reported watermark with its
        visible staleness stamped."""
        seed = data.draw(st.integers(0, 2**20), label="seed")
        rng = random.Random(seed)
        steps = data.draw(st.integers(4, 12), label="steps")
        facts = list(runner.dataset("factbench"))[:8]
        router = ShardedValidationService.from_runner(
            runner,
            NUM_SHARDS,
            ServiceConfig(time_scale=0.001),
            store=runner.sharded_store("factbench", NUM_SHARDS).replay_twin(),
            replicas=1,
            edges=2,
            drain_interval_s=0.005,
            edge_lag_s={"edge-1": 0.05},
            drain_seed=seed,
        )
        sessions = ["alice", "bob"]
        regions = {"alice": "edge-0", "bob": "edge-1"}
        floors: Dict[str, Dict[int, int]] = {name: {} for name in sessions}

        async def go():
            violations: List[str] = []
            async with router:
                for step in range(steps):
                    session = rng.choice(sessions)
                    if rng.random() < 0.4:
                        report = await router.apply_mutations(
                            [
                                Mutation.add_triple(
                                    f"GeoEntity{rng.randrange(40)}",
                                    "worksFor",
                                    f"Org{step}",
                                )
                            ],
                            session=session,
                        )
                        floor = floors[session]
                        for shard, shard_report in report.shard_reports:
                            floor[shard] = max(
                                floor.get(shard, 0), shard_report.epoch
                            )
                    else:
                        response = await router.submit(
                            ServiceRequest(rng.choice(facts), "dka", "gemma2:9b"),
                            session=session,
                            region=regions[session],
                        )
                        if response.outcome is not RequestOutcome.COMPLETED:
                            continue
                        vector = response.epoch_vector
                        for shard, epoch in floors[session].items():
                            if vector[shard] < epoch:
                                violations.append(
                                    f"{session} step {step}: shard {shard} at "
                                    f"{vector[shard]} below own write {epoch}"
                                )
                        if response.served_by not in (None, "primary"):
                            assert response.staleness_epochs is not None
                            watermark = router.watermark_vector(response.served_by)
                            assert all(
                                v >= w for v, w in zip(vector, watermark)
                            ), "edge served below its reported watermark"
                await router.drain_edges()
                for name in router.live_edge_names:
                    router.geo.verify_converged(name)
            return violations

        assert asyncio.run(go()) == []
